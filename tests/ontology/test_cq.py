"""Tests for competency questions and coverage (the ValueT criterion)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ontology.cq import (
    MNVLT,
    CompetencyQuestion,
    coverage,
    extract_terms,
    lexicon,
    normalise_term,
    value_t,
)
from repro.ontology.model import OntClass, OntProperty, Ontology

EX = "http://example.org/cq#"


class TestNormalise:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("Formats", "format"),
            ("categories", "category"),
            ("codecs", "codec"),
            ("glasses", "glass"),  # 'ses' suffix handled
            ("loudness", "loudness"),
            ("video", "video"),
            ("aliasing", "aliasing"),
        ],
    )
    def test_examples(self, word, expected):
        assert normalise_term(word) == expected


class TestExtractTerms:
    def test_strips_stopwords(self):
        terms = extract_terms("What is the duration of a video?")
        assert terms == ("duration", "video")

    def test_deduplicates_preserving_order(self):
        terms = extract_terms("video video codec video")
        assert terms == ("video", "codec")


class TestCompetencyQuestion:
    def test_auto_terms(self):
        cq = CompetencyQuestion("q1", "Which codec encodes the stream?")
        assert "codec" in cq.key_terms and "stream" in cq.key_terms

    def test_explicit_terms_normalised(self):
        cq = CompetencyQuestion("q1", "whatever", key_terms=("Codecs",))
        assert cq.key_terms == ("codec",)

    def test_needs_id_and_terms(self):
        with pytest.raises(ValueError):
            CompetencyQuestion("", "something")
        with pytest.raises(ValueError):
            CompetencyQuestion("q", "of the a")


def ontology_with(*names: str) -> Ontology:
    onto = Ontology(EX.rstrip("#"))
    for i, name in enumerate(names):
        if i % 2 == 0:
            onto.add_class(OntClass(EX + name, label=name))
        else:
            onto.add_property(OntProperty(EX + name))
    return onto


class TestLexicon:
    def test_splits_and_stems(self):
        lex = lexicon(ontology_with("VideoSegments", "hasDurations"))
        assert {"video", "segment", "duration"} <= lex
        # scaffolding words ("has") are stopwords, not lexicon content
        assert "has" not in lex

    def test_labels_included(self):
        onto = Ontology(EX.rstrip("#"))
        onto.add_class(OntClass(EX + "X1", label="anamorphic lens"))
        assert "anamorphic" in lexicon(onto)


class TestCoverage:
    def questions(self):
        return [
            CompetencyQuestion("q1", "x", key_terms=("video", "duration")),
            CompetencyQuestion("q2", "x", key_terms=("vignette",)),
            CompetencyQuestion("q3", "x", key_terms=("telecine", "video")),
        ]

    def test_full_term_requirement(self):
        onto = ontology_with("Video", "duration", "Vignette")
        result = coverage(onto, self.questions())
        assert set(result.covered) == {"q1", "q2"}
        assert result.uncovered == ("q3",)
        assert result.ratio == pytest.approx(2 / 3)
        assert result.value_t == pytest.approx(2.0)

    def test_threshold_relaxation(self):
        onto = ontology_with("Video")
        strict = coverage(onto, self.questions())
        assert "q1" not in strict.covered
        relaxed = coverage(onto, self.questions(), threshold=0.5)
        assert "q1" in relaxed.covered and "q3" in relaxed.covered

    def test_match_fractions(self):
        onto = ontology_with("Video")
        result = coverage(onto, self.questions())
        assert result.match_fractions["q1"] == pytest.approx(0.5)
        assert result.match_fractions["q2"] == 0.0

    def test_duplicate_ids_rejected(self):
        onto = ontology_with("Video")
        qs = [CompetencyQuestion("q", "a video"), CompetencyQuestion("q", "a codec")]
        with pytest.raises(ValueError):
            coverage(onto, qs)

    def test_empty_questions(self):
        with pytest.raises(ValueError):
            coverage(ontology_with("Video"), [])

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            coverage(ontology_with("Video"), self.questions(), threshold=0.0)


class TestValueT:
    def test_paper_formula(self):
        """ValueT = covered x MNVLT / total, MNVLT = 3 (Fig. 3)."""
        assert MNVLT == 3.0
        assert value_t(31, 100) == pytest.approx(0.93)
        assert value_t(25, 100) == pytest.approx(0.75)
        assert value_t(6, 100) == pytest.approx(0.18)

    def test_bounds(self):
        with pytest.raises(ValueError):
            value_t(5, 0)
        with pytest.raises(ValueError):
            value_t(-1, 10)
        with pytest.raises(ValueError):
            value_t(11, 10)

    @given(st.integers(0, 50), st.integers(1, 50))
    def test_range(self, covered, total):
        covered = min(covered, total)
        assert 0.0 <= value_t(covered, total) <= MNVLT
