"""Tests for the integration (merge) substrate."""

import pytest

from repro.ontology.merge import equivalence_triples, integrate
from repro.ontology.model import Individual, OntClass, OntProperty, Ontology
from repro.ontology.vocab import OWL


def onto(iri: str, *class_names: str, label=None) -> Ontology:
    o = Ontology(iri, label=label or iri.rsplit("/", 1)[-1])
    for cn in class_names:
        o.add_class(OntClass(f"{iri}#{cn}", label=cn))
    return o


class TestIntegrate:
    def test_basic_network(self):
        target = onto("http://t.example/m3", "Resource")
        a = onto("http://a.example/one", "Video", "Audio")
        b = onto("http://b.example/two", "Track")
        network, report = integrate(target, [a, b])
        assert set(network.imports) == {"http://a.example/one", "http://b.example/two"}
        assert report.n_classes == 4
        assert report.n_entities == 4
        assert set(report.sources) == {a.iri, b.iri}

    def test_inputs_untouched(self):
        target = onto("http://t.example/m3", "Resource")
        a = onto("http://a.example/one", "Video")
        n_before = len(target.classes)
        integrate(target, [a])
        assert len(target.classes) == n_before

    def test_prefix_bindings_unique(self):
        target = onto("http://t.example/m3")
        a = onto("http://a.example/one", label="media")
        b = onto("http://b.example/two", label="media")
        network, report = integrate(target, [a, b])
        assert len(report.prefix_bindings) == 2
        assert len(set(report.prefix_bindings)) == 2

    def test_collision_links(self):
        target = onto("http://t.example/m3")
        a = onto("http://a.example/one", "Video")
        b = onto("http://b.example/two", "Video")
        _, report = integrate(target, [a, b])
        assert len(report.collisions) == 1
        link = report.collisions[0]
        assert link.local == "video"
        assert link.kind == "class"

    def test_collision_detection_covers_properties_and_individuals(self):
        target = onto("http://t.example/m3")
        a = onto("http://a.example/one")
        a.add_property(OntProperty("http://a.example/one#duration", kind="data"))
        a.add_individual(Individual("http://a.example/one#clip"))
        b = onto("http://b.example/two")
        b.add_property(OntProperty("http://b.example/two#duration", kind="data"))
        b.add_individual(Individual("http://b.example/two#clip"))
        _, report = integrate(target, [a, b])
        kinds = sorted(link.kind for link in report.collisions)
        assert kinds == ["individual", "property"]

    def test_needs_selection(self):
        with pytest.raises(ValueError):
            integrate(onto("http://t.example/m3"), [])

    def test_duplicate_iris_rejected(self):
        a = onto("http://a.example/one", "Video")
        with pytest.raises(ValueError):
            integrate(a, [onto("http://a.example/one")])


class TestEquivalenceTriples:
    def test_predicates_by_kind(self):
        target = onto("http://t.example/m3")
        a = onto("http://a.example/one", "Video")
        b = onto("http://b.example/two", "Video")
        _, report = integrate(target, [a, b])
        graph = equivalence_triples(report.collisions)
        assert len(graph) == 1
        triple = next(iter(graph))
        assert triple[1] == OWL.equivalentClass


class TestCaseStudyIntegration:
    def test_pipeline_network(self, case_registry):
        from repro.casestudy.cqs import m3_competency_questions
        from repro.casestudy.preferences import paper_weight_system
        from repro.neon.pipeline import ReusePipeline
        from repro.ontology.model import Ontology as Onto

        target = Onto("http://repro.example.org/m3", label="M3")
        pipeline = ReusePipeline(
            case_registry,
            m3_competency_questions(),
            target=target,
            weights=paper_weight_system(),
        )
        report = pipeline.run("multimedia ontology")
        assert report.network is not None
        assert report.merge_report is not None
        assert set(report.network.imports) == {
            case_registry.get(n).ontology.iri for n in report.selected
        }
