"""Tests for the ontology registry, metadata and search."""

import pytest

from repro.ontology.corpus import (
    OntologyRegistry,
    RegisteredOntology,
    ReuseMetadata,
)
from repro.ontology.model import OntClass, Ontology

EX = "http://example.org/reg#"


def entry(name: str, *class_names: str, keywords=()) -> RegisteredOntology:
    onto = Ontology(EX + name, label=name, comment=f"About {name}.")
    for cn in class_names:
        onto.add_class(OntClass(EX + name + "/" + cn, label=cn))
    return RegisteredOntology(name=name, ontology=onto, keywords=tuple(keywords))


class TestMetadata:
    def test_defaults(self):
        meta = ReuseMetadata()
        assert meta.financial_cost == 0.0
        assert meta.evaluation_level is None
        assert meta.reused_by == ()

    def test_purpose_validated(self):
        with pytest.raises(ValueError):
            ReuseMetadata(purpose="commercial")
        for purpose in ("unclassified", "academic", "standard-transform", "project", None):
            ReuseMetadata(purpose=purpose)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ReuseMetadata(financial_cost=-5)
        with pytest.raises(ValueError):
            ReuseMetadata(access_time_days=-1)
        with pytest.raises(ValueError):
            ReuseMetadata(evaluation_level=4)


class TestRegistry:
    def test_register_and_get(self):
        reg = OntologyRegistry([entry("A", "Video")])
        assert "A" in reg and len(reg) == 1
        assert reg.get("A").name == "A"
        with pytest.raises(KeyError):
            reg.get("B")

    def test_duplicate_rejected(self):
        reg = OntologyRegistry([entry("A")])
        with pytest.raises(ValueError):
            reg.register(entry("A"))

    def test_with_metadata(self):
        reg = OntologyRegistry([entry("A")])
        reg.with_metadata("A", financial_cost=10.0)
        assert reg.get("A").metadata.financial_cost == 10.0

    def test_entry_needs_name(self):
        with pytest.raises(ValueError):
            RegisteredOntology(name="", ontology=Ontology(EX + "x"))


class TestSearch:
    def make_registry(self):
        return OntologyRegistry(
            [
                entry("VideoOnt", "Video", "Segment", keywords=("multimedia",)),
                entry("MusicOnt", "Track", "Album", keywords=("music",)),
                entry("MixedOnt", "Video", "Track"),
            ]
        )

    def test_scores_by_term_fraction(self):
        hits = self.make_registry().search("video segment")
        scores = {h.name: h.score for h in hits}
        assert scores["VideoOnt"] == pytest.approx(1.0)
        assert scores["MixedOnt"] == pytest.approx(0.5)

    def test_ordering(self):
        hits = self.make_registry().search("video track")
        assert hits[0].name == "MixedOnt"

    def test_min_score_filters(self):
        hits = self.make_registry().search("video segment", min_score=0.6)
        assert [h.name for h in hits] == ["VideoOnt"]

    def test_keywords_searchable(self):
        hits = self.make_registry().search("multimedia")
        assert hits and hits[0].name == "VideoOnt"

    def test_matched_terms_reported(self):
        hits = self.make_registry().search("video zzzunknown")
        best = hits[0]
        assert best.matched_terms == ("video",)

    def test_empty_query(self):
        with pytest.raises(ValueError):
            self.make_registry().search("of the")
