"""Tests for the ontology object model and graph conversion."""

import pytest

from repro.ontology.graph import TripleGraph
from repro.ontology.model import Individual, OntClass, OntProperty, Ontology
from repro.ontology.turtle import parse, serialise
from repro.ontology.vocab import OWL, RDF

EX = "http://example.org/mm#"


def build() -> Ontology:
    onto = Ontology(
        "http://example.org/mm",
        label="MM",
        comment="A multimedia test ontology.",
        language="OWL",
        version="0.3",
    )
    onto.imports.append("http://example.org/base")
    onto.documentation_urls.append("http://wiki.example.org/mm")
    onto.creators.append("Ada")
    onto.add_class(OntClass(EX + "Media", label="Media", comment="Root."))
    onto.add_class(
        OntClass(EX + "Video", label="Video", superclasses=[EX + "Media"])
    )
    onto.add_property(
        OntProperty(
            EX + "duration",
            label="duration",
            kind="data",
            domain=EX + "Video",
            range="http://www.w3.org/2001/XMLSchema#decimal",
        )
    )
    onto.add_property(
        OntProperty(EX + "hasPart", kind="object", domain=EX + "Media",
                    range=EX + "Media")
    )
    onto.add_individual(
        Individual(EX + "clip1", label="Clip one", types=[EX + "Video"])
    )
    return onto


class TestEntities:
    def test_name_is_local_part(self):
        assert OntClass(EX + "Video").name == "Video"

    def test_is_documented(self):
        assert OntClass(EX + "V", label="v", comment="c").is_documented
        assert not OntClass(EX + "V", label="v").is_documented

    def test_property_kind_validated(self):
        with pytest.raises(ValueError):
            OntProperty(EX + "p", kind="annotation")

    def test_empty_iri_rejected(self):
        with pytest.raises(ValueError):
            OntClass("")
        with pytest.raises(ValueError):
            Ontology("")


class TestOntology:
    def test_duplicate_entities_rejected(self):
        onto = build()
        with pytest.raises(ValueError):
            onto.add_class(OntClass(EX + "Media"))
        with pytest.raises(ValueError):
            onto.add_property(OntProperty(EX + "duration", kind="data"))
        with pytest.raises(ValueError):
            onto.add_individual(Individual(EX + "clip1"))

    def test_accessors(self):
        onto = build()
        assert len(onto.classes) == 2
        assert len(onto.object_properties) == 1
        assert len(onto.data_properties) == 1
        assert len(onto.individuals) == 1
        assert onto.entity_count() == 5
        assert onto.get_class(EX + "Video").label == "Video"
        assert onto.has_class(EX + "Media")
        with pytest.raises(KeyError):
            onto.get_class(EX + "Nope")

    def test_lexical_entries(self):
        entries = build().lexical_entries()
        assert "Video" in entries and "duration" in entries
        # labels and names deduplicated
        assert entries.count("Video") == 1


class TestGraphConversion:
    def test_round_trip(self):
        onto = build()
        restored = Ontology.from_graph(onto.to_graph())
        assert restored.iri == onto.iri
        assert restored.version == "0.3"
        assert restored.imports == ["http://example.org/base"]
        assert restored.documentation_urls == ["http://wiki.example.org/mm"]
        assert restored.creators == ["Ada"]
        assert {c.iri for c in restored.classes} == {c.iri for c in onto.classes}
        video = restored.get_class(EX + "Video")
        assert video.superclasses == [EX + "Media"]
        prop = next(p for p in restored.properties if p.name == "duration")
        assert prop.kind == "data" and prop.domain == EX + "Video"
        ind = restored.individuals[0]
        assert ind.types == [EX + "Video"]

    def test_round_trip_through_turtle(self):
        onto = build()
        text = serialise(onto.to_graph(), onto.prefixes)
        restored = Ontology.from_graph(parse(text))
        assert restored.to_graph().equals(onto.to_graph())

    def test_graph_without_ontology_header(self):
        with pytest.raises(ValueError):
            Ontology.from_graph(TripleGraph([(EX + "x", RDF.type, OWL.Class)]))

    def test_graph_with_two_ontologies(self):
        g = TripleGraph(
            [
                ("http://a", RDF.type, OWL.Ontology),
                ("http://b", RDF.type, OWL.Ontology),
            ]
        )
        with pytest.raises(ValueError):
            Ontology.from_graph(g)
