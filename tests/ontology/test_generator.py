"""Tests for the synthetic ontology generator and its calibration.

The contract: for every feasible target combination, assessing the
generated ontology yields exactly the targets.  The full grid has 1,584
combinations (covered by the slow-marked sweep); the default run checks
a deterministic stratified sample plus the corner cases.
"""

import itertools

import pytest

from repro.neon.assessment import assess
from repro.ontology.corpus import ReuseMetadata
from repro.ontology.cq import CompetencyQuestion, coverage
from repro.ontology.generator import OntologySpec, generate

CQS = [
    CompetencyQuestion("cq0", "x", key_terms=("chrominance",)),
    CompetencyQuestion("cq1", "x", key_terms=("rotoscope",)),
    CompetencyQuestion("cq2", "x", key_terms=("telecine",)),
    CompetencyQuestion("cq3", "x", key_terms=("vectorscope",)),
]

CLARITY_MIN = {0: 0, 1: 1, 2: 2, 3: 2}
_STRUCTURAL_ATTRS = (
    "documentation_quality",
    "external_knowledge",
    "code_clarity",
    "naming_conventions",
    "knowledge_extraction",
    "implementation_language",
)


def all_combinations():
    for combo in itertools.product(
        (0, 1, 2, 3), (0, 1, 2, 3), (0, 1, 2, 3), (1, 2, 3), (0, 1, 2, 3), (1, 2, 3)
    ):
        doc, _, clar, _, _, _ = combo
        if clar >= CLARITY_MIN[doc]:
            yield combo


def spec_for(combo, n_classes=40, cqs=2):
    doc, ext, clar, naming, ke, lang = combo
    return OntologySpec(
        "T",
        seed=hash(combo) % 100_000,
        n_classes=n_classes,
        doc_quality=doc,
        ext_knowledge=ext,
        code_clarity=clar,
        naming=naming,
        knowledge_extraction=ke,
        language_adequacy=lang,
        covered_cqs=tuple(CQS[:cqs]),
        metadata=ReuseMetadata(),
    )


def assert_round_trip(combo, **kwargs):
    assessment = assess(generate(spec_for(combo, **kwargs)), CQS)
    got = tuple(assessment.performance(a) for a in _STRUCTURAL_ATTRS)
    assert got == combo, f"targets {combo} assessed as {got}"


class TestSpecValidation:
    def test_range_checks(self):
        with pytest.raises(ValueError):
            spec_for((4, 0, 0, 1, 0, 1))
        with pytest.raises(ValueError):
            spec_for((0, 0, 0, 0, 0, 1))  # naming 0 invalid
        with pytest.raises(ValueError):
            spec_for((0, 0, 0, 1, 0, 0))  # language 0 invalid

    def test_doc_clarity_consistency(self):
        with pytest.raises(ValueError):
            spec_for((3, 0, 1, 2, 0, 3))  # doc 3 forces clarity >= 2

    def test_min_size(self):
        with pytest.raises(ValueError):
            OntologySpec("T", seed=1, n_classes=4)

    def test_needs_name(self):
        with pytest.raises(ValueError):
            OntologySpec("", seed=1)


class TestDeterminism:
    def test_same_spec_same_ontology(self):
        spec = spec_for((2, 2, 3, 3, 2, 3))
        a = generate(spec).ontology.to_graph()
        b = generate(spec).ontology.to_graph()
        assert a.equals(b)

    def test_different_seeds_differ(self):
        base = spec_for((2, 2, 3, 3, 2, 3))
        import dataclasses

        other = dataclasses.replace(base, seed=base.seed + 1)
        assert not generate(base).ontology.to_graph().equals(
            generate(other).ontology.to_graph()
        )


class TestCQCoverage:
    def test_covered_cqs_reach_lexicon(self):
        entry = generate(spec_for((2, 2, 3, 2, 2, 3), cqs=3))
        result = coverage(entry.ontology, CQS)
        assert set(result.covered) == {"cq0", "cq1", "cq2"}

    def test_opaque_names_still_cover(self):
        entry = generate(spec_for((0, 0, 0, 1, 0, 1), cqs=3))
        result = coverage(entry.ontology, CQS)
        assert set(result.covered) == {"cq0", "cq1", "cq2"}

    def test_uncovered_cqs_stay_uncovered(self):
        entry = generate(spec_for((3, 3, 3, 3, 3, 3), cqs=1))
        result = coverage(entry.ontology, CQS)
        assert result.covered == ("cq0",)


class TestCalibrationCorners:
    @pytest.mark.parametrize(
        "combo",
        [
            (0, 0, 0, 1, 0, 1),
            (3, 3, 3, 3, 3, 3),
            (0, 3, 3, 1, 0, 2),
            (3, 0, 2, 2, 1, 1),
            (1, 1, 1, 2, 2, 2),
            (2, 2, 2, 3, 3, 3),
            (3, 2, 2, 1, 3, 2),
            (1, 0, 3, 3, 1, 3),
        ],
    )
    def test_corner(self, combo):
        assert_round_trip(combo)

    @pytest.mark.parametrize("n_classes", [12, 25, 64])
    def test_sizes(self, n_classes):
        assert_round_trip((2, 1, 2, 2, 2, 3), n_classes=n_classes)


class TestCalibrationSample:
    def test_stratified_sample(self):
        combos = list(all_combinations())
        sample = combos[:: max(1, len(combos) // 80)]
        for combo in sample:
            assert_round_trip(combo)


@pytest.mark.slow
class TestCalibrationFullSweep:
    def test_every_combination(self):
        for combo in all_combinations():
            assert_round_trip(combo)


class TestMetadataPassThrough:
    def test_metadata_preserved(self):
        meta = ReuseMetadata(
            financial_cost=50.0,
            n_test_suites=2,
            evaluation_level=3,
            team_publications=8,
            purpose="project",
            reused_by=("NeOn",),
        )
        spec = OntologySpec("T", seed=9, covered_cqs=(), metadata=meta)
        assert generate(spec).metadata is meta

    def test_provenance_assessed_from_metadata(self):
        meta = ReuseMetadata(
            financial_cost=0.0,
            access_time_days=0.5,
            n_test_suites=3,
            evaluation_level=3,
            team_publications=10,
            purpose="project",
            reused_by=("NeOn", "W3C"),
            uses_design_patterns=True,
        )
        assessment = assess(generate(OntologySpec("T", seed=9, metadata=meta)), CQS)
        assert assessment.performance("financial_cost") == 3
        assert assessment.performance("required_time") == 3
        assert assessment.performance("test_availability") == 3
        assert assessment.performance("former_evaluation") == 3
        assert assessment.performance("team_reputation") == 3
        assert assessment.performance("purpose_reliability") == 3
        assert assessment.performance("practical_support") == 3
