"""Tests for ontology file I/O and corpus directories."""

import pytest

from repro.ontology.io import (
    dump_graph,
    dump_ontology,
    dump_registry,
    load_graph,
    load_ontology,
    load_registry,
)


class TestFormatDispatch:
    @pytest.mark.parametrize("suffix", [".ttl", ".nt", ".rdf", ".owl"])
    def test_graph_round_trip(self, tmp_path, suffix, case_registry):
        graph = case_registry.get("SAPO").ontology.to_graph()
        path = tmp_path / f"sapo{suffix}"
        dump_graph(graph, path, case_registry.get("SAPO").ontology.prefixes)
        assert load_graph(path).equals(graph)

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError):
            load_graph(tmp_path / "x.json")

    def test_ontology_round_trip(self, tmp_path, case_registry):
        onto = case_registry.get("COMM").ontology
        path = tmp_path / "comm.ttl"
        dump_ontology(onto, path)
        restored = load_ontology(path, language=onto.language)
        assert restored.to_graph().equals(onto.to_graph())
        assert restored.language == onto.language


class TestCorpusDirectory:
    def test_registry_round_trip(self, tmp_path, case_registry):
        manifest = dump_registry(case_registry, tmp_path / "corpus")
        assert manifest.exists()
        restored = load_registry(tmp_path / "corpus")
        assert set(restored.names) == set(case_registry.names)
        original = case_registry.get("Boemie VDO")
        loaded = restored.get("Boemie VDO")
        assert loaded.metadata == original.metadata
        assert loaded.ontology.to_graph().equals(original.ontology.to_graph())

    def test_round_tripped_corpus_assesses_identically(self, tmp_path, case_registry):
        """The strongest I/O guarantee: a corpus written to Turtle and
        read back still derives the exact Fig. 2 matrix."""
        from repro.casestudy.corpus import assessed_performance_table
        from repro.casestudy.performances import performance_table
        from repro.core.scales import MISSING

        dump_registry(case_registry, tmp_path / "corpus")
        restored = load_registry(tmp_path / "corpus")
        derived = assessed_performance_table(restored)
        shipped = performance_table()
        for alt in shipped.alternatives:
            for attr in shipped.attribute_names:
                a = derived[alt.name].performance(attr)
                b = alt.performance(attr)
                if b is MISSING:
                    assert a is MISSING
                else:
                    assert float(a) == pytest.approx(float(b))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_registry(tmp_path)

    def test_bad_format(self, tmp_path, case_registry):
        with pytest.raises(ValueError):
            dump_registry(case_registry, tmp_path, fmt=".json")
