"""Tests for the N-Triples and RDF/XML formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ontology.graph import Literal, TripleGraph
from repro.ontology.ntriples import (
    NTriplesSyntaxError,
    parse_ntriples,
    serialise_ntriples,
)
from repro.ontology.rdfxml import (
    RdfXmlSyntaxError,
    parse_rdfxml,
    serialise_rdfxml,
)
from repro.ontology.vocab import RDF, RDFS, XSD

EX = "http://example.org/fmt#"


def sample() -> TripleGraph:
    g = TripleGraph()
    g.add(EX + "a", RDF.type, EX + "Widget")
    g.add(EX + "a", RDFS.label, Literal("a widget", lang="en"))
    g.add(EX + "a", RDFS.comment, Literal('quote " backslash \\ newline\n'))
    g.add(EX + "a", EX + "size", Literal("42", datatype=XSD.integer))
    g.add("_:b1", RDFS.seeAlso, EX + "a")
    g.add(EX + "a", EX + "rel", "_:b1")
    return g


class TestNTriples:
    def test_round_trip(self):
        g = sample()
        assert parse_ntriples(serialise_ntriples(g)).equals(g)

    def test_deterministic_sorted_output(self):
        out = serialise_ntriples(sample())
        assert out == serialise_ntriples(sample())
        assert out.splitlines() == sorted(out.splitlines())

    def test_comments_and_blanks_skipped(self):
        text = (
            "# a comment\n\n"
            f"<{EX}a> <{RDF.type}> <{EX}Widget> .\n"
        )
        assert len(parse_ntriples(text)) == 1

    def test_malformed_line_reports_number(self):
        with pytest.raises(NTriplesSyntaxError) as err:
            parse_ntriples("this is not a triple .")
        assert err.value.line == 1

    def test_escape_handling(self):
        g = parse_ntriples(
            f'<{EX}a> <{EX}p> "tab\\there \\u00e9" .\n'
        )
        value = next(iter(g))[2]
        assert value.value == "tab\there é"

    def test_empty_document(self):
        assert len(parse_ntriples("")) == 0
        assert serialise_ntriples(TripleGraph()) == ""


class TestRdfXml:
    def test_round_trip(self):
        g = sample()
        text = serialise_rdfxml(g, {"ex": EX})
        assert parse_rdfxml(text).equals(g)

    def test_typed_node_element(self):
        doc = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"'
            f' xmlns:ex="{EX}">'
            f'<ex:Widget rdf:about="{EX}a"/></rdf:RDF>'
        )
        g = parse_rdfxml(doc)
        assert (EX + "a", RDF.type, EX + "Widget") in g

    def test_nested_node_element(self):
        doc = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"'
            f' xmlns:ex="{EX}">'
            f'<rdf:Description rdf:about="{EX}a">'
            f'<ex:part><ex:Widget rdf:about="{EX}b"/></ex:part>'
            "</rdf:Description></rdf:RDF>"
        )
        g = parse_rdfxml(doc)
        assert (EX + "a", EX + "part", EX + "b") in g
        assert (EX + "b", RDF.type, EX + "Widget") in g

    def test_property_attributes(self):
        doc = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"'
            f' xmlns:ex="{EX}">'
            f'<rdf:Description rdf:about="{EX}a" ex:name="gadget"/></rdf:RDF>'
        )
        g = parse_rdfxml(doc)
        assert (EX + "a", EX + "name", Literal("gadget")) in g

    def test_parse_type_rejected(self):
        doc = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"'
            f' xmlns:ex="{EX}">'
            f'<rdf:Description rdf:about="{EX}a">'
            '<ex:p rdf:parseType="Collection"/>'
            "</rdf:Description></rdf:RDF>"
        )
        with pytest.raises(RdfXmlSyntaxError):
            parse_rdfxml(doc)

    def test_not_xml(self):
        with pytest.raises(RdfXmlSyntaxError):
            parse_rdfxml("@prefix ex: <http://e/> .")

    def test_ontology_round_trip(self, case_registry):
        from repro.ontology.model import Ontology

        onto = case_registry.get("COMM").ontology
        g = onto.to_graph()
        text = serialise_rdfxml(g, onto.prefixes)
        restored = Ontology.from_graph(parse_rdfxml(text))
        assert restored.to_graph().equals(g)


_iris = st.sampled_from([EX + n for n in ("A", "B", "p", "q")])
_objects = st.one_of(
    _iris,
    st.text(alphabet="abc \"\\\n", max_size=12).map(Literal),
    st.integers(-99, 99).map(Literal.integer),
    st.sampled_from(["_:x", "_:y"]),
)


@given(st.lists(st.tuples(_iris, _iris, _objects), max_size=15))
def test_formats_round_trip_random_graphs(triples):
    g = TripleGraph()
    for t in triples:
        g.add(*t)
    assert parse_ntriples(serialise_ntriples(g)).equals(g)
    assert parse_rdfxml(serialise_rdfxml(g, {"ex": EX})).equals(g)
