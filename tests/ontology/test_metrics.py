"""Tests for structural and lexical ontology metrics."""

import pytest

from repro.ontology.metrics import (
    case_style,
    compute_metrics,
    split_identifier,
)
from repro.ontology.model import Individual, OntClass, OntProperty, Ontology

EX = "http://example.org/m#"


class TestSplitIdentifier:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("hasVideoSegment", ("has", "video", "segment")),
            ("VideoSegment", ("video", "segment")),
            ("video_segment", ("video", "segment")),
            ("video-segment", ("video", "segment")),
            ("MPEG7", ("mpeg", "7")),
            ("frameRate", ("frame", "rate")),
            ("ALLCAPS", ("allcaps",)),
            ("", ()),
        ],
    )
    def test_examples(self, name, expected):
        assert split_identifier(name) == expected


class TestCaseStyle:
    @pytest.mark.parametrize(
        "name,style",
        [
            ("hasSegment", "camel"),
            ("VideoSegment", "pascal"),
            ("video_segment", "snake"),
            ("video-segment", "kebab"),
            ("video", "lower"),
            ("VIDEO", "upper"),
            ("", "mixed"),
        ],
    )
    def test_examples(self, name, style):
        assert case_style(name) == style


def make_ontology(doc_pairs, superclass_map=None, see_also=0) -> Ontology:
    """doc_pairs: list of (name, has_label, has_comment)."""
    onto = Ontology(EX.rstrip("#"), label="T")
    superclass_map = superclass_map or {}
    for i, (name, has_label, has_comment) in enumerate(doc_pairs):
        cls = OntClass(
            EX + name,
            label=name if has_label else None,
            comment=f"doc {i}" if has_comment else None,
            superclasses=[EX + s for s in superclass_map.get(name, [])],
            see_also=[f"http://doc/{i}"] if i < see_also else [],
        )
        onto.add_class(cls)
    return onto


class TestDocumentation:
    def test_coverage_fractions(self):
        onto = make_ontology(
            [("A", True, True), ("B", True, False), ("C", False, False), ("D", False, True)]
        )
        m = compute_metrics(onto)
        assert m.documentation_coverage == pytest.approx(0.25)
        assert m.label_coverage == pytest.approx(0.5)
        assert m.comment_coverage == pytest.approx(0.5)

    def test_see_also_counted(self):
        m = compute_metrics(make_ontology([("A", True, True)] * 1, see_also=1))
        assert m.n_see_also == 1


class TestStructure:
    def test_depth_and_roots(self):
        onto = make_ontology(
            [("A", True, True), ("B", True, True), ("C", True, True), ("D", True, True)],
            superclass_map={"B": ["A"], "C": ["B"], "D": []},
        )
        m = compute_metrics(onto)
        assert m.max_depth == 3
        assert m.n_roots == 2
        assert m.tangledness == 0.0

    def test_tangledness(self):
        onto = make_ontology(
            [("A", True, True), ("B", True, True), ("C", True, True)],
            superclass_map={"C": ["A", "B"]},
        )
        assert compute_metrics(onto).tangledness == pytest.approx(1 / 3)

    def test_cycle_does_not_hang(self):
        onto = make_ontology(
            [("A", True, True), ("B", True, True)],
            superclass_map={"A": ["B"], "B": ["A"]},
        )
        m = compute_metrics(onto)
        assert m.max_depth >= 1

    def test_empty_ontology(self):
        onto = Ontology(EX.rstrip("#"))
        m = compute_metrics(onto)
        assert m.n_entities == 0
        assert m.max_depth == 0
        assert m.documentation_coverage == 0.0


class TestNaming:
    def test_consistency_detects_dominant_family(self):
        onto = Ontology(EX.rstrip("#"))
        for name in ("VideoClip", "AudioClip", "hasTrack", "duration"):
            onto.add_class(OntClass(EX + name))
        onto.add_class(OntClass(EX + "weird_name"))
        m = compute_metrics(onto)
        assert m.dominant_case_style == "camel"
        assert m.case_consistency == pytest.approx(0.8)

    def test_intuitive_fraction(self):
        onto = Ontology(EX.rstrip("#"))
        onto.add_class(OntClass(EX + "VideoSegment"))
        onto.add_class(OntClass(EX + "C07XQ"))
        m = compute_metrics(onto)
        assert m.intuitive_name_fraction == pytest.approx(0.5)

    def test_standard_terms_counted(self):
        onto = Ontology(EX.rstrip("#"))
        onto.add_class(OntClass(EX + "MediaFormat"))     # standard (MPEG-7 family)
        onto.add_class(OntClass(EX + "Zorbltrap"))       # not standard
        m = compute_metrics(onto)
        assert m.standard_term_fraction == pytest.approx(0.5)

    def test_standard_namespace_counts(self):
        onto = Ontology(EX.rstrip("#"))
        onto.add_class(OntClass("http://www.w3.org/ns/ma-ont#Unseen"))
        m = compute_metrics(onto)
        assert m.standard_term_fraction == pytest.approx(1.0)


class TestLanguageAndCounts:
    def test_counts(self):
        onto = make_ontology([("A", True, True)])
        onto.add_property(OntProperty(EX + "p", kind="object"))
        onto.add_property(OntProperty(EX + "q", kind="data"))
        onto.add_individual(Individual(EX + "i"))
        m = compute_metrics(onto)
        assert m.n_classes == 1
        assert m.n_object_properties == 1
        assert m.n_data_properties == 1
        assert m.n_individuals == 1
        assert m.n_entities == 4

    def test_language_carried(self):
        onto = Ontology(EX.rstrip("#"), language="RDFS")
        assert compute_metrics(onto).language == "RDFS"
