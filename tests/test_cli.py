"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "11"])


class TestCommands:
    def test_figure(self, capsys):
        code, out = run_cli(capsys, "figure", "1")
        assert code == 0
        assert "Reuse Cost" in out

    def test_rank(self, capsys):
        code, out = run_cli(capsys, "rank")
        assert code == 0
        assert out.index("Media Ontology") < out.index("Boemie VDO")

    def test_rank_by_objective(self, capsys):
        code, out = run_cli(capsys, "rank", "--objective", "Understandability")
        assert code == 0
        assert "Boemie VDO" in out

    def test_stability(self, capsys):
        code, out = run_cli(capsys, "stability")
        assert code == 0
        assert out.count("BOUNDED") == 2

    def test_screen(self, capsys):
        code, out = run_cli(capsys, "screen")
        assert code == 0
        assert "20 of 23" in out

    def test_intervals(self, capsys):
        code, out = run_cli(capsys, "intervals")
        assert code == 0
        assert "best attainable" in out
        assert "Media Ontology" in out

    def test_simulate_small(self, capsys):
        code, out = run_cli(capsys, "simulate", "-n", "200", "--seed", "1")
        assert code == 0
        assert "ever ranked first" in out

    def test_batch_default_problem(self, capsys):
        code, out = run_cli(capsys, "batch")
        assert code == 0
        assert "Multimedia" in out and "Media Ontology" in out
        assert "evaluated 1 problem(s)" in out

    def test_batch_objectives_and_simulate(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--objectives", "--simulate", "200", "--seed", "1"
        )
        assert code == 0
        assert "Multimedia:Understandability" in out
        assert "ever best" in out
        assert "200 simulations each" in out

    def test_batch_workspace_registry_hits_compile_cache(self, capsys, tmp_path):
        from repro.core.workspace import clear_compile_cache

        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        clear_compile_cache()
        code, out = run_cli(capsys, "batch", str(target), str(target))
        assert code == 0
        assert "evaluated 2 problem(s)" in out
        assert "1 hits, 1 misses" in out

    def test_batch_skips_corrupt_workspace(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        code, _ = run_cli(capsys, "workspace", "save", str(good))
        assert code == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{ definitely not json")
        code, out = run_cli(capsys, "batch", str(good), str(bad))
        assert code == 0
        assert "evaluated 1 problem(s)" in out
        assert "skipped 1 unreadable workspace(s)" in out
        assert "bad.json" in out

    def test_batch_workers_byte_identical_merged_output(
        self, capsys, tmp_path
    ):
        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        registry = [str(target)] * 5
        outputs = {}
        for workers in (1, 2, 3):
            code, out = run_cli(
                capsys,
                "batch",
                "--workers",
                str(workers),
                "--simulate",
                "100",
                *registry,
            )
            assert code == 0
            outputs[workers] = out
        assert outputs[1] == outputs[2] == outputs[3]
        assert "evaluated 5 problem(s)" in outputs[1]
        # and the rows agree with the sequential engine path
        code, sequential = run_cli(
            capsys, "batch", "--simulate", "100", *registry
        )
        assert code == 0
        table = lambda text: [  # noqa: E731 - local helper
            line for line in text.splitlines() if "Media Ontology" in line
        ]
        assert table(sequential) == table(outputs[1])

    def test_batch_workers_skips_corrupt_workspace(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        code, _ = run_cli(capsys, "workspace", "save", str(good))
        assert code == 0
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        code, out = run_cli(
            capsys, "batch", "--workers", "1", str(good), str(bad)
        )
        assert code == 0
        assert "evaluated 1 problem(s)" in out
        assert "skipped 1 unreadable workspace(s)" in out

    def test_batch_all_corrupt_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("nope")
        code, out = run_cli(capsys, "batch", str(bad))
        assert code == 1
        assert "evaluated 0 problem(s)" in out
        code, out = run_cli(capsys, "batch", "--workers", "1", str(bad))
        assert code == 1
        assert "skipped 1 unreadable workspace(s)" in out

    def test_batch_workers_requires_workspaces(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "--workers", "2"])

    def test_batch_workers_objectives(self, capsys, tmp_path):
        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        code, out = run_cli(
            capsys, "batch", "--workers", "1", "--objectives", str(target)
        )
        assert code == 0
        assert "Multimedia:Understandability" in out

    def test_pipeline(self, capsys):
        code, out = run_cli(capsys, "pipeline")
        assert code == 0
        assert "selected 5" in out

    def test_workspace_round_trip(self, capsys, tmp_path):
        target = tmp_path / "ws.json"
        code, out = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0 and target.exists()
        code, out = run_cli(capsys, "--workspace", str(target), "rank")
        assert code == 0
        assert "Media Ontology" in out

    def test_workspace_show(self, capsys):
        code, out = run_cli(capsys, "workspace", "show")
        assert code == 0
        assert "alternatives: 23" in out

    def test_workspace_save_needs_path(self, capsys):
        with pytest.raises(SystemExit):
            main(["workspace", "save"])


def write_group_fixture(tmp_path):
    """(registry dir, members file) for group CLI tests."""
    import json

    from repro.core import workspace

    from .conftest import make_small_problem

    registry = tmp_path / "registry"
    registry.mkdir()
    for i in range(4):
        workspace.save(
            make_small_problem(missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"),
            registry / f"ws-{i:02d}.json",
        )
    members = []
    for k in range(3):
        local = {}
        for i, node in enumerate(
            ("cost", "quality", "battery life", "vendor support")
        ):
            factor = 1.0 + 0.2 * ((k + i) % 3)
            local[node] = [0.8 * factor, 1.2 * factor]
        members.append({"name": f"dm-{k}", "local": local})
    members_path = tmp_path / "members.json"
    members_path.write_text(
        json.dumps({"format": "repro-members/1", "members": members})
    )
    return registry, members_path


class TestGroupCommand:
    def test_group_table_over_registry(self, capsys, tmp_path):
        registry, members = write_group_fixture(tmp_path)
        code, out = run_cli(
            capsys, "group", "--registry", str(registry),
            "--members", str(members),
        )
        assert code == 0
        assert "group best" in out and "borda best" in out
        assert out.count("ws-0") >= 4
        assert "evaluated 4 workspace(s) under 3 member(s)" in out

    def test_group_second_run_serves_from_cache(self, capsys, tmp_path):
        registry, members = write_group_fixture(tmp_path)
        code1, out1 = run_cli(
            capsys, "group", "--registry", str(registry),
            "--members", str(members),
        )
        code2, out2 = run_cli(
            capsys, "group", "--registry", str(registry),
            "--members", str(members),
        )
        assert (code1, code2) == (0, 0)
        assert "4 served from cache" in out2
        # identical table either way
        assert out1.splitlines()[:6] == out2.splitlines()[:6]

    def test_group_no_cache_leaves_no_index(self, capsys, tmp_path):
        registry, members = write_group_fixture(tmp_path)
        code, _ = run_cli(
            capsys, "group", "--registry", str(registry),
            "--members", str(members), "--no-cache",
        )
        assert code == 0
        assert not (registry / ".repro-index.sqlite").exists()

    def test_group_missing_members_file(self, capsys, tmp_path):
        registry, _ = write_group_fixture(tmp_path)
        with pytest.raises(SystemExit, match="members"):
            run_cli(
                capsys, "group", "--registry", str(registry),
                "--members", str(tmp_path / "absent.json"),
            )

    def test_group_bad_registry(self, capsys, tmp_path):
        _, members = write_group_fixture(tmp_path)
        with pytest.raises(SystemExit, match="registry"):
            run_cli(
                capsys, "group", "--registry", str(tmp_path / "nope"),
                "--members", str(members),
            )


class TestBatchGroup:
    def test_batch_group_columns(self, capsys, tmp_path):
        registry, members = write_group_fixture(tmp_path)
        workspaces = sorted(str(p) for p in registry.glob("*.json"))
        code, out = run_cli(
            capsys, "batch", "--group", str(members), *workspaces
        )
        assert code == 0
        assert "group best" in out and "borda best" in out

    def test_batch_group_conflicts_with_objectives(self, capsys, tmp_path):
        registry, members = write_group_fixture(tmp_path)
        workspaces = sorted(str(p) for p in registry.glob("*.json"))
        with pytest.raises(SystemExit, match="conflicts"):
            run_cli(
                capsys, "batch", "--group", str(members), "--objectives",
                *workspaces,
            )

    def test_batch_group_requires_workspaces(self, capsys, tmp_path):
        _, members = write_group_fixture(tmp_path)
        with pytest.raises(SystemExit, match="explicit"):
            run_cli(capsys, "batch", "--group", str(members))

    def test_group_no_cache_conflicts_with_refresh(self, capsys, tmp_path):
        registry, members = write_group_fixture(tmp_path)
        with pytest.raises(SystemExit, match="no-cache conflicts"):
            run_cli(
                capsys, "group", "--registry", str(registry),
                "--members", str(members), "--no-cache", "--refresh",
            )


class TestServeMembersValidation:
    def test_missing_members_file_is_not_a_bind_error(self, tmp_path):
        from repro.cli import main

        registry = tmp_path / "registry"
        registry.mkdir()
        with pytest.raises(SystemExit, match="members file"):
            main([
                "serve", "--registry", str(registry),
                "--members", str(tmp_path / "absent.json"), "--port", "0",
            ])

    def test_malformed_members_file_reported(self, tmp_path):
        from repro.cli import main

        registry = tmp_path / "registry"
        registry.mkdir()
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "nope"}')
        with pytest.raises(SystemExit, match="members file"):
            main([
                "serve", "--registry", str(registry),
                "--members", str(bad), "--port", "0",
            ])


class TestTraceAndStats:
    def _registry(self, capsys, tmp_path, n=4):
        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        return [str(target)] * n

    def test_batch_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        registry = self._registry(capsys, tmp_path)
        trace_file = tmp_path / "trace.json"
        code, out = run_cli(
            capsys, "batch", "--trace", str(trace_file), *registry
        )
        assert code == 0
        assert "evaluated 4 problem(s)" in out
        document = json.loads(trace_file.read_text())
        events = document["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        assert "registry.run" in names
        assert "eval.stacked" in names
        assert all(event["ph"] == "X" for event in events)

    def test_batch_stats_prints_stage_breakdown(self, capsys, tmp_path):
        registry = self._registry(capsys, tmp_path)
        code, out = run_cli(capsys, "batch", "--stats", *registry)
        assert code == 0
        assert "stage breakdown" in out
        assert "registry.run" in out
        assert "eval.stacked" in out

    def test_batch_trace_output_table_unchanged(self, capsys, tmp_path):
        registry = self._registry(capsys, tmp_path)
        code, plain = run_cli(capsys, "batch", "--workers", "1", *registry)
        assert code == 0
        trace_file = tmp_path / "trace.json"
        code, traced = run_cli(
            capsys, "batch", "--workers", "1",
            "--trace", str(trace_file), *registry,
        )
        assert code == 0
        assert plain == traced

    def test_trace_summarize(self, capsys, tmp_path):
        registry = self._registry(capsys, tmp_path)
        trace_file = tmp_path / "trace.json"
        code, _ = run_cli(
            capsys, "batch", "--trace", str(trace_file), *registry
        )
        assert code == 0
        code, out = run_cli(capsys, "trace", "summarize", str(trace_file))
        assert code == 0
        assert "span" in out and "total ms" in out
        assert "registry.run" in out

    def test_trace_summarize_missing_file_errors(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="cannot summarize"):
            run_cli(
                capsys, "trace", "summarize", str(tmp_path / "absent.json")
            )

    def test_follow_conflicts_with_trace(self, capsys, tmp_path):
        registry = self._registry(capsys, tmp_path, n=1)
        with pytest.raises(SystemExit, match="--follow conflicts"):
            run_cli(
                capsys, "batch", "--follow",
                "--trace", str(tmp_path / "t.json"), *registry,
            )
