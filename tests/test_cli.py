"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "11"])


class TestCommands:
    def test_figure(self, capsys):
        code, out = run_cli(capsys, "figure", "1")
        assert code == 0
        assert "Reuse Cost" in out

    def test_rank(self, capsys):
        code, out = run_cli(capsys, "rank")
        assert code == 0
        assert out.index("Media Ontology") < out.index("Boemie VDO")

    def test_rank_by_objective(self, capsys):
        code, out = run_cli(capsys, "rank", "--objective", "Understandability")
        assert code == 0
        assert "Boemie VDO" in out

    def test_stability(self, capsys):
        code, out = run_cli(capsys, "stability")
        assert code == 0
        assert out.count("BOUNDED") == 2

    def test_screen(self, capsys):
        code, out = run_cli(capsys, "screen")
        assert code == 0
        assert "20 of 23" in out

    def test_intervals(self, capsys):
        code, out = run_cli(capsys, "intervals")
        assert code == 0
        assert "best attainable" in out
        assert "Media Ontology" in out

    def test_simulate_small(self, capsys):
        code, out = run_cli(capsys, "simulate", "-n", "200", "--seed", "1")
        assert code == 0
        assert "ever ranked first" in out

    def test_batch_default_problem(self, capsys):
        code, out = run_cli(capsys, "batch")
        assert code == 0
        assert "Multimedia" in out and "Media Ontology" in out
        assert "evaluated 1 problem(s)" in out

    def test_batch_objectives_and_simulate(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--objectives", "--simulate", "200", "--seed", "1"
        )
        assert code == 0
        assert "Multimedia:Understandability" in out
        assert "ever best" in out
        assert "200 simulations each" in out

    def test_batch_workspace_registry_hits_compile_cache(self, capsys, tmp_path):
        from repro.core.workspace import clear_compile_cache

        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        clear_compile_cache()
        code, out = run_cli(capsys, "batch", str(target), str(target))
        assert code == 0
        assert "evaluated 2 problem(s)" in out
        assert "1 hits, 1 misses" in out

    def test_batch_skips_corrupt_workspace(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        code, _ = run_cli(capsys, "workspace", "save", str(good))
        assert code == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{ definitely not json")
        code, out = run_cli(capsys, "batch", str(good), str(bad))
        assert code == 0
        assert "evaluated 1 problem(s)" in out
        assert "skipped 1 unreadable workspace(s)" in out
        assert "bad.json" in out

    def test_batch_workers_byte_identical_merged_output(
        self, capsys, tmp_path
    ):
        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        registry = [str(target)] * 5
        outputs = {}
        for workers in (1, 2, 3):
            code, out = run_cli(
                capsys,
                "batch",
                "--workers",
                str(workers),
                "--simulate",
                "100",
                *registry,
            )
            assert code == 0
            outputs[workers] = out
        assert outputs[1] == outputs[2] == outputs[3]
        assert "evaluated 5 problem(s)" in outputs[1]
        # and the rows agree with the sequential engine path
        code, sequential = run_cli(
            capsys, "batch", "--simulate", "100", *registry
        )
        assert code == 0
        table = lambda text: [  # noqa: E731 - local helper
            line for line in text.splitlines() if "Media Ontology" in line
        ]
        assert table(sequential) == table(outputs[1])

    def test_batch_workers_skips_corrupt_workspace(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        code, _ = run_cli(capsys, "workspace", "save", str(good))
        assert code == 0
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        code, out = run_cli(
            capsys, "batch", "--workers", "1", str(good), str(bad)
        )
        assert code == 0
        assert "evaluated 1 problem(s)" in out
        assert "skipped 1 unreadable workspace(s)" in out

    def test_batch_all_corrupt_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("nope")
        code, out = run_cli(capsys, "batch", str(bad))
        assert code == 1
        assert "evaluated 0 problem(s)" in out
        code, out = run_cli(capsys, "batch", "--workers", "1", str(bad))
        assert code == 1
        assert "skipped 1 unreadable workspace(s)" in out

    def test_batch_workers_requires_workspaces(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "--workers", "2"])

    def test_batch_workers_objectives(self, capsys, tmp_path):
        target = tmp_path / "ws.json"
        code, _ = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0
        code, out = run_cli(
            capsys, "batch", "--workers", "1", "--objectives", str(target)
        )
        assert code == 0
        assert "Multimedia:Understandability" in out

    def test_pipeline(self, capsys):
        code, out = run_cli(capsys, "pipeline")
        assert code == 0
        assert "selected 5" in out

    def test_workspace_round_trip(self, capsys, tmp_path):
        target = tmp_path / "ws.json"
        code, out = run_cli(capsys, "workspace", "save", str(target))
        assert code == 0 and target.exists()
        code, out = run_cli(capsys, "--workspace", str(target), "rank")
        assert code == 0
        assert "Media Ontology" in out

    def test_workspace_show(self, capsys):
        code, out = run_cli(capsys, "workspace", "show")
        assert code == 0
        assert "alternatives: 23" in out

    def test_workspace_save_needs_path(self, capsys):
        with pytest.raises(SystemExit):
            main(["workspace", "save"])
