"""Tests for the classic MCDM comparators."""

import numpy as np
import pytest

from repro.baselines.mcdm import (
    lexicographic,
    topsis,
    utilities_from_problem,
    weighted_sum,
)

NAMES = ("a", "b", "c")
MATRIX = np.array(
    [
        [0.9, 0.8, 0.7],
        [0.5, 0.5, 0.5],
        [0.1, 0.2, 0.9],
    ]
)
WEIGHTS = np.array([0.5, 0.3, 0.2])


class TestWeightedSum:
    def test_known_scores(self):
        result = weighted_sum(NAMES, MATRIX, WEIGHTS)
        assert result[0][0] == "a"
        assert result[0][1] == pytest.approx(0.9 * 0.5 + 0.8 * 0.3 + 0.7 * 0.2)

    def test_weights_normalised(self):
        doubled = weighted_sum(NAMES, MATRIX, WEIGHTS * 2)
        baseline = weighted_sum(NAMES, MATRIX, WEIGHTS)
        for (n1, s1), (n2, s2) in zip(doubled, baseline):
            assert n1 == n2 and s1 == pytest.approx(s2)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_sum(NAMES, MATRIX, np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            weighted_sum(NAMES, MATRIX, np.array([-1.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            weighted_sum(NAMES, MATRIX, np.zeros(3))


class TestTopsis:
    def test_dominant_alternative_wins(self):
        result = topsis(NAMES, MATRIX, WEIGHTS)
        assert result[0][0] == "a"

    def test_closeness_in_unit_interval(self):
        for _, closeness in topsis(NAMES, MATRIX, WEIGHTS):
            assert 0.0 <= closeness <= 1.0

    def test_ideal_gets_one(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0]])
        result = dict(topsis(("best", "worst"), matrix, np.array([0.5, 0.5])))
        assert result["best"] == pytest.approx(1.0)
        assert result["worst"] == pytest.approx(0.0)


class TestLexicographic:
    def test_heaviest_criterion_first(self):
        order = lexicographic(NAMES, MATRIX, WEIGHTS)
        assert order == ("a", "b", "c")

    def test_ties_move_to_next_criterion(self):
        matrix = np.array([[0.5, 0.9], [0.5, 0.1]])
        order = lexicographic(("x", "y"), matrix, np.array([0.9, 0.1]))
        assert order == ("x", "y")

    def test_full_tie_breaks_by_name(self):
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        order = lexicographic(("b", "a"), matrix, np.array([0.5, 0.5]))
        assert order == ("a", "b")


class TestProblemAdapter:
    def test_extraction(self, case_problem):
        names, matrix, weights = utilities_from_problem(case_problem)
        assert len(names) == 23
        assert matrix.shape == (23, 14)
        assert weights.sum() == pytest.approx(1.0)

    def test_wsm_equals_additive_average(self, case_problem):
        """The precise weighted sum must reproduce the GMAA average
        ranking (it is the same formula with collapsed imprecision)."""
        from repro.core.model import evaluate

        names, matrix, weights = utilities_from_problem(case_problem)
        wsm_order = tuple(n for n, _ in weighted_sum(names, matrix, weights))
        assert wsm_order == evaluate(case_problem).names_by_rank

    def test_topsis_close_to_wsm_on_case_study(self, case_problem):
        from repro.core.ranking import kendall_tau

        names, matrix, weights = utilities_from_problem(case_problem)
        wsm_order = [n for n, _ in weighted_sum(names, matrix, weights)]
        topsis_order = [n for n, _ in topsis(names, matrix, weights)]
        assert kendall_tau(wsm_order, topsis_order) > 0.8
