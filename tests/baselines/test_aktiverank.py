"""Tests for the AKTiveRank-style graph-metric baseline."""

import pytest

from repro.baselines.aktiverank import (
    AKTiveRankScores,
    rank,
    score_ontology,
)
from repro.ontology.model import OntClass, OntProperty, Ontology

EX = "http://example.org/ak#"


def rich_ontology() -> Ontology:
    onto = Ontology(EX + "rich")
    onto.add_class(OntClass(EX + "Video", label="Video"))
    onto.add_class(OntClass(EX + "VideoSegment", label="Video Segment",
                            superclasses=[EX + "Video"]))
    onto.add_class(OntClass(EX + "AudioSegment", label="Audio Segment",
                            superclasses=[EX + "Video"]))
    onto.add_class(OntClass(EX + "Frame", label="Frame",
                            superclasses=[EX + "VideoSegment"]))
    onto.add_property(OntProperty(EX + "hasSegment", kind="object",
                                  domain=EX + "Video", range=EX + "VideoSegment"))
    return onto


def poor_ontology() -> Ontology:
    onto = Ontology(EX + "poor")
    onto.add_class(OntClass(EX + "Thing", label="Thing"))
    onto.add_class(OntClass(EX + "Stuff", label="Stuff"))
    return onto


class TestScores:
    def test_query_match_scores(self):
        scores = score_ontology(rich_ontology(), "video segment")
        assert scores["cmm"] > 0
        assert scores["dem"] > 0

    def test_no_match_means_zero(self):
        scores = score_ontology(poor_ontology(), "video segment")
        assert scores["cmm"] == 0
        assert scores["ssm"] == 0

    def test_empty_query(self):
        with pytest.raises(ValueError):
            score_ontology(rich_ontology(), "of the")

    def test_aggregate_weighted(self):
        s = AKTiveRankScores("x", cmm=1.0, dem=0.5, ssm=0.0, bem=0.0)
        assert s.aggregate((1.0, 1.0, 1.0, 1.0)) == pytest.approx(0.375)
        assert s.aggregate() == pytest.approx((0.4 * 1 + 0.3 * 0.5) / 1.0)


class TestRanking:
    def test_rich_beats_poor(self):
        result = rank(
            {"rich": rich_ontology(), "poor": poor_ontology()},
            "video segment frame",
        )
        assert result[0][0] == "rich"
        assert result[0][1] > result[1][1]

    def test_scores_normalised(self):
        result = rank(
            {"rich": rich_ontology(), "poor": poor_ontology()},
            "video segment",
        )
        assert all(0.0 <= score <= 1.0 for _, score in result)

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            rank({}, "video")

    def test_blind_to_provenance(self, case_registry):
        """The ablation story: graph metrics cannot see cost/reliability
        criteria, so their ranking diverges from the MAUT one."""
        from repro.casestudy.names import RANKED_NAMES
        from repro.core.ranking import kendall_tau

        ontos = {e.name: e.ontology for e in case_registry}
        result = rank(ontos, "video audio media duration segment")
        tau = kendall_tau([n for n, _ in result], list(RANKED_NAMES))
        assert tau < 0.5
