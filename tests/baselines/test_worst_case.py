"""Tests for the thesis-[15] worst-case baseline."""

import pytest

from repro.baselines.worst_case import worst_case_problem, worst_case_ranking
from repro.core.model import evaluate
from repro.core.ranking import kendall_tau


class TestTransformation:
    def test_no_missing_cells_left(self, case_problem):
        transformed = worst_case_problem(case_problem)
        assert transformed.table.missing_cells() == ()

    def test_weights_collapse_to_averages(self, case_problem):
        transformed = worst_case_problem(case_problem)
        for attr in transformed.attribute_names:
            assert transformed.weights.attribute_weight_interval(attr).is_point

    def test_original_untouched(self, case_problem):
        worst_case_problem(case_problem)
        assert len(case_problem.table.missing_cells()) > 0

    def test_min_equals_max_not_required(self, case_problem):
        """Component utilities stay imprecise — only weights and
        missing values are collapsed (as [15] did)."""
        ranking = worst_case_ranking(case_problem)
        assert any(row.minimum < row.maximum for row in ranking)


class TestPaperComparison:
    def test_rankings_very_similar(self, case_problem):
        """§IV: the GMAA ranking 'is very similar to the ranking in
        [15]' despite the mishandled missing values."""
        ours = evaluate(case_problem).names_by_rank
        theirs = worst_case_ranking(case_problem).names_by_rank
        assert kendall_tau(ours, theirs) > 0.85

    def test_worst_case_punishes_missing_rows(self, case_problem):
        """Candidates with unknown cells can only drop under the
        worst-level treatment."""
        ours = evaluate(case_problem)
        theirs = worst_case_ranking(case_problem)
        for name, _ in case_problem.table.missing_cells():
            assert theirs.rank_of(name) >= ours.rank_of(name)

    def test_small_problem_missing(self, small_problem_missing):
        ranking = worst_case_ranking(small_problem_missing)
        baseline = evaluate(small_problem_missing)
        assert ranking.average_of("mid") < baseline.average_of("mid")
