"""Cross-subsystem integration tests.

Each scenario chains several packages the way a downstream user would:
corpus on disk -> registry -> pipeline -> workspace -> CLI -> figures.
"""

import pytest

from repro.casestudy.cqs import m3_competency_questions
from repro.casestudy.names import RANKED_NAMES, TOP_FIVE
from repro.casestudy.preferences import paper_weight_system
from repro.core.model import evaluate
from repro.core.workspace import load, save
from repro.neon.pipeline import ReusePipeline
from repro.ontology.io import dump_registry, load_registry


class TestDiskToDecision:
    def test_full_chain(self, tmp_path, case_registry):
        """corpus dir -> registry -> pipeline -> ranking -> workspace ->
        reload -> same ranking."""
        dump_registry(case_registry, tmp_path / "corpus", fmt=".nt")
        registry = load_registry(tmp_path / "corpus")

        pipeline = ReusePipeline(
            registry,
            m3_competency_questions(),
            weights=paper_weight_system(),
        )
        report = pipeline.run("multimedia ontology", integrate_selection=False)
        assert report.evaluation.names_by_rank == RANKED_NAMES
        assert report.selection.selected == TOP_FIVE

        ws_path = tmp_path / "decision.json"
        save(report.problem, ws_path)
        restored = load(ws_path)
        assert evaluate(restored).names_by_rank == RANKED_NAMES


class TestCliOverExportedArtifacts:
    def test_cli_reads_pipeline_workspace(self, tmp_path, capsys, case_problem):
        from repro.cli import main

        ws_path = tmp_path / "case.json"
        save(case_problem, ws_path)
        code = main(["--workspace", str(ws_path), "figure", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.index("Media Ontology") < out.index("Photography")

    def test_cli_corpus_export(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["corpus", str(tmp_path / "exported"), "--format", ".ttl"])
        out = capsys.readouterr().out
        assert code == 0
        assert "23 candidate ontologies" in out
        registry = load_registry(tmp_path / "exported")
        assert len(registry) == 23


class TestSensitivitySuiteConsistency:
    def test_all_analyses_agree_on_the_leader(self, case_problem, case_model, case_mc):
        """Average ranking, stability, screening, Monte Carlo and rank
        intervals must tell one coherent story about Media Ontology."""
        from repro.core.dominance import screen
        from repro.core.rankintervals import rank_intervals
        from repro.core.stability import stability_report

        ev = evaluate(case_problem)
        assert ev.best.name == "Media Ontology"

        report = stability_report(case_problem, mode="best")
        full = [
            name
            for name in report.insensitive_objectives()
        ]
        assert len(full) == 16  # leader robust almost everywhere

        screening = screen(case_model)
        assert "Media Ontology" in screening.potentially_optimal

        assert case_mc.statistics_for("Media Ontology").mode == 1

        intervals = rank_intervals(case_model)
        assert intervals["Media Ontology"].best == 1

    def test_monte_carlo_respects_rank_intervals(self, case_model, case_mc):
        from repro.core.rankintervals import rank_intervals

        intervals = rank_intervals(case_model)
        for name in case_mc.names:
            stats = case_mc.statistics_for(name)
            assert intervals[name].contains(stats.minimum)
            assert intervals[name].contains(stats.maximum)


class TestGroupOverCaseStudy:
    def test_group_of_paper_dms_reproduces_paper_ranking(self, case_problem):
        """Members sharing the paper's weight system agree with Fig. 6."""
        from repro.core.group import GroupDecision, GroupMember

        member = GroupMember("dm1", paper_weight_system(case_problem.hierarchy))
        clone = GroupMember("dm2", member.weights)
        group = GroupDecision(case_problem, [member, clone])
        assert group.borda() == RANKED_NAMES
