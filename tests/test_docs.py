"""Documentation gates: links resolve, CLI docs run, docstrings exist."""

import ast
import importlib.util
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


DOC_PAGES = (
    "architecture.md",
    "cli.md",
    "generator.md",
    "caching.md",
    "group.md",
    "paper-map.md",
    "observability.md",
    "robustness.md",
    "service.md",
    "streaming.md",
)


class TestDocsTree:
    @pytest.mark.parametrize("page", DOC_PAGES)
    def test_page_exists_and_has_content(self, page):
        path = ROOT / "docs" / page
        assert path.is_file()
        assert len(path.read_text()) > 500

    def test_intra_repo_links_resolve(self):
        assert check_docs.check_links() == []

    def test_no_orphan_docs_pages(self):
        assert check_docs.check_orphans() == []

    def test_every_documented_subcommand_exists(self):
        """Every `repro` line in docs/cli.md names a real subcommand."""
        from repro.cli import build_parser

        sub_actions = next(
            action
            for action in build_parser()._actions
            if hasattr(action, "choices") and action.choices
        )
        known = set(sub_actions.choices)
        lines = check_docs.documented_cli_lines()
        assert lines, "docs/cli.md documents no repro command lines"
        for line in lines:
            argv = check_docs._subcommand(line)
            if argv:  # bare `repro --help` lines have no subcommand
                assert argv[0] in known, f"unknown subcommand in: {line}"

    def test_every_subcommand_is_documented(self):
        from repro.cli import build_parser

        sub_actions = next(
            action
            for action in build_parser()._actions
            if hasattr(action, "choices") and action.choices
        )
        documented = {
            argv[0]
            for argv in map(
                check_docs._subcommand, check_docs.documented_cli_lines()
            )
            if argv
        }
        missing = set(sub_actions.choices) - documented
        assert not missing, f"subcommands absent from docs/cli.md: {missing}"

    def test_documented_lines_run_help_smoke(self):
        """The CI gate, exercised in-suite: --help exits 0 for each verb."""
        lines = check_docs.documented_cli_lines()
        assert check_docs.check_cli_lines(lines) == []


DOCSTRING_MODULES = (
    "core/engine",
    "core/genreg",
    "fuzz",
    "core/faults",
    "core/group",
    "core/runtime",
    "core/workspace",
    "core/index",
    "service/app",
    "service/cache",
    "service/server",
    "service/routes",
    "service/federation",
    "obs/__init__",
    "obs/trace",
    "obs/metrics",
)


class TestDocstringCoverage:
    @pytest.mark.parametrize("module", DOCSTRING_MODULES)
    def test_every_public_symbol_has_a_docstring(self, module):
        path = ROOT / "src" / "repro" / f"{module}.py"
        tree = ast.parse(path.read_text())
        missing = []
        if ast.get_docstring(tree) is None:
            missing.append("<module>")

        def walk(node, prefix=""):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    name = prefix + child.name
                    public = not child.name.startswith("_") or (
                        child.name in ("__init__", "__enter__", "__exit__", "__len__")
                    )
                    if public and ast.get_docstring(child) is None:
                        missing.append(name)
                    if isinstance(child, ast.ClassDef):
                        walk(child, name + ".")

        walk(tree)
        assert not missing, (
            f"{module}.py public symbols without docstrings: {missing}"
        )
