"""Test package marker (keeps relative conftest imports importable)."""
