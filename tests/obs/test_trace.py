"""Tests for the span tracing layer (repro.obs.trace)."""

import json
import os
from pathlib import Path

import pytest

from repro.obs import trace


class TestTracer:
    def test_span_records_on_exit(self):
        tracer = trace.Tracer()
        with tracer.span("work", n=3):
            assert len(tracer) == 0
        assert len(tracer) == 1
        record = tracer.spans()[0]
        assert record.name == "work"
        assert record.attributes == {"n": 3}
        assert record.trace_id == tracer.trace_id
        assert record.parent_id is None
        assert record.duration_us >= 0.0
        assert record.pid == os.getpid()

    def test_nesting_sets_parent_ids(self):
        tracer = trace.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        # children record before the parent (exit order)
        assert [s.name for s in tracer.spans()] == [
            "inner",
            "sibling",
            "outer",
        ]
        assert [s.seq for s in tracer.spans()] == [0, 1, 2]

    def test_attributes_coerced_to_scalars(self):
        tracer = trace.Tracer()
        with tracer.span("work", path=Path("x.json"), flag=True):
            pass
        attrs = tracer.spans()[0].attributes
        assert attrs == {"path": "x.json", "flag": True}

    def test_current_tracks_innermost(self):
        tracer = trace.Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
        assert tracer.current() is None


class TestModuleHooks:
    def test_span_is_noop_without_tracer(self):
        assert trace.active() is None
        with trace.span("anything", n=1) as record:
            assert record is None

    def test_tracing_installs_and_restores(self):
        with trace.tracing() as tracer:
            assert trace.active() is tracer
            with trace.span("work") as record:
                assert record is not None
        assert trace.active() is None
        assert [s.name for s in tracer.spans()] == ["work"]

    def test_tracing_nests_without_clobbering(self):
        with trace.tracing() as outer:
            with trace.tracing() as inner:
                assert trace.active() is inner
            assert trace.active() is outer
        assert trace.active() is None

    def test_install_uninstall(self):
        tracer = trace.Tracer()
        trace.install(tracer)
        try:
            assert trace.active() is tracer
        finally:
            trace.uninstall()
        assert trace.active() is None


class TestPayloadRoundTrip:
    def test_to_from_payload(self):
        tracer = trace.Tracer()
        with tracer.span("work", n=2):
            pass
        original = tracer.spans()[0]
        rebuilt = trace.Span.from_payload(original.to_payload())
        assert rebuilt == original

    def test_payload_is_json_safe(self):
        tracer = trace.Tracer()
        with tracer.span("work", path=Path("w.json")):
            pass
        payload = tracer.spans()[0].to_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestAdopt:
    def _worker_spans(self):
        worker = trace.Tracer()
        with worker.span("chunk.evaluate"):
            with worker.span("eval.stacked"):
                pass
        return [s.to_payload() for s in worker.spans()]

    def test_adopt_rebrands_and_reparents_roots(self):
        payloads = self._worker_spans()
        parent = trace.Tracer()
        with parent.span("registry.fan_out") as fan:
            fan_id = fan.span_id
        adopted = parent.adopt(payloads, parent_id=fan_id)
        assert all(s.trace_id == parent.trace_id for s in adopted)
        by_name = {s.name: s for s in adopted}
        # the worker root re-parents under the dispatching span ...
        assert by_name["chunk.evaluate"].parent_id == fan_id
        # ... while worker-internal links survive
        assert (
            by_name["eval.stacked"].parent_id
            == by_name["chunk.evaluate"].span_id
        )

    def test_adopt_preserves_payload_order_deterministically(self):
        payloads = self._worker_spans()
        a, b = trace.Tracer(), trace.Tracer()
        a.adopt(payloads)
        b.adopt(payloads)
        assert [s.name for s in a.spans()] == [s.name for s in b.spans()]
        assert [s.seq for s in a.spans()] == [s.seq for s in b.spans()]


class TestChromeExport:
    def _tracer(self):
        tracer = trace.Tracer()
        with tracer.span("registry.run", n=4):
            with tracer.span("eval.stacked"):
                pass
        return tracer

    def test_chrome_trace_structure(self):
        document = trace.chrome_trace(self._tracer().spans())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        for event in document["traceEvents"]:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert "trace_id" in event["args"]
            assert "span_id" in event["args"]

    def test_write_read_round_trip(self, tmp_path):
        tracer = self._tracer()
        path = trace.write_chrome_trace(tracer.spans(), tmp_path / "t.json")
        events = trace.read_chrome_trace(path)
        assert [e["name"] for e in events] == [
            s.name for s in tracer.spans()
        ]

    def test_read_accepts_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([{"name": "x", "ph": "X", "dur": 5.0}]))
        assert trace.read_chrome_trace(path) == [
            {"name": "x", "ph": "X", "dur": 5.0}
        ]

    def test_read_rejects_non_trace_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a trace"}))
        with pytest.raises(ValueError):
            trace.read_chrome_trace(path)


class TestSummarize:
    def test_totals_sorted_by_total_time(self):
        tracer = trace.Tracer()
        slow = trace.Span("slow", "t", "a", None, 0.0, 9000.0, 1, 1)
        fast1 = trace.Span("fast", "t", "b", None, 0.0, 1000.0, 1, 1)
        fast2 = trace.Span("fast", "t", "c", None, 0.0, 3000.0, 1, 1)
        for record in (fast1, slow, fast2):
            tracer.record(record)
        rows = trace.summarize(tracer.spans())
        assert [row["name"] for row in rows] == ["slow", "fast"]
        assert rows[0]["total_ms"] == pytest.approx(9.0)
        assert rows[1]["count"] == 2
        assert rows[1]["mean_ms"] == pytest.approx(2.0)
        assert rows[1]["max_ms"] == pytest.approx(3.0)

    def test_summarize_from_file(self, tmp_path):
        tracer = trace.Tracer()
        with tracer.span("work"):
            pass
        path = trace.write_chrome_trace(tracer.spans(), tmp_path / "t.json")
        rows = trace.summarize(path)
        assert rows[0]["name"] == "work"
        assert rows[0]["count"] == 1
