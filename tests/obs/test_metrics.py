"""Tests for the metrics registry and Prometheus exposition."""

import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("hits_total", "hits")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("hits_total", "hits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("req_total", "reqs", labelnames=("code",))
        counter.inc(code="200")
        counter.inc(code="200")
        counter.inc(code="500")
        assert counter.value(code="200") == 2.0
        assert counter.value(code="500") == 1.0

    def test_rejects_undeclared_labels(self):
        counter = Counter("req_total", "reqs", labelnames=("code",))
        with pytest.raises(ValueError):
            counter.inc(status="200")
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_inc_value(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(4)
        gauge.inc(-1.5)
        assert gauge.value() == 2.5


class TestHistogram:
    def test_observe_and_count(self):
        histogram = Histogram("lat", "latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3

    def test_rendered_buckets_are_cumulative_and_monotonic(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 0.5, 1.0)
        )
        for value in (0.05, 0.05, 0.3, 0.7, 9.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        buckets = {}
        for line in text.splitlines():
            if line.startswith("lat_seconds_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = float(line.rsplit(" ", 1)[1])
        assert list(buckets) == ["0.1", "0.5", "1", "+Inf"]
        counts = list(buckets.values())
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets["0.1"] == 2.0
        assert buckets["0.5"] == 3.0
        assert buckets["1"] == 4.0
        assert buckets["+Inf"] == 5.0
        assert "lat_seconds_count 5" in text
        assert "lat_seconds_sum" in text

    def test_requires_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("lat", "latency", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "hits")
        b = registry.counter("hits_total", "hits")
        assert a is b

    def test_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_rejects_labelname_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labelnames=("b",))

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b")
        registry.gauge("a_depth", "a")
        assert [i.name for i in registry.instruments()] == [
            "a_depth",
            "b_total",
        ]

    def test_process_default_reset(self):
        previous = metrics.registry()
        fresh = metrics.reset_registry()
        try:
            assert metrics.registry() is fresh
            assert fresh is not previous
            assert fresh.instruments() == []
        finally:
            metrics.set_registry(previous)


class TestExposition:
    def test_content_type_is_prometheus_text(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_help_and_type_emitted_before_samples(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "How many hits.")
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# HELP hits_total How many hits." in lines
        assert "# TYPE hits_total counter" in lines

    def test_label_value_escaping(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        registry = MetricsRegistry()
        counter = registry.counter(
            "odd_total", "odd labels", labelnames=("path",)
        )
        counter.inc(path='we"ird\\path\nline')
        text = render_prometheus(registry)
        assert 'path="we\\"ird\\\\path\\nline"' in text

    def test_integral_floats_render_as_ints(self):
        registry = MetricsRegistry()
        registry.counter("n_total", "n").inc(3)
        assert "n_total 3\n" in render_prometheus(registry)

    def test_extra_lines_appended(self):
        registry = MetricsRegistry()
        text = render_prometheus(registry, extra_lines=["custom_metric 1"])
        assert text.endswith("custom_metric 1\n")

    def test_render_defaults_to_process_registry(self):
        previous = metrics.registry()
        fresh = metrics.reset_registry()
        try:
            fresh.counter("scoped_total", "scoped").inc()
            assert "scoped_total 1" in render_prometheus()
        finally:
            metrics.set_registry(previous)

    def test_concurrent_increments_do_not_lose_counts(self):
        counter = Counter("race_total", "race")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class TestStageHelper:
    def test_stage_observes_histogram_without_tracer(self):
        from repro import obs

        previous = metrics.registry()
        metrics.reset_registry()
        try:
            with obs.stage("eval.test"):
                pass
            assert obs.stage_histogram().count(stage="eval.test") == 1
        finally:
            metrics.set_registry(previous)

    def test_stage_records_span_with_tracer(self):
        from repro import obs

        previous = metrics.registry()
        metrics.reset_registry()
        try:
            with obs.tracing() as tracer:
                with obs.stage("eval.test", n=1):
                    pass
            assert [s.name for s in tracer.spans()] == ["eval.test"]
            assert obs.stage_histogram().count(stage="eval.test") == 1
        finally:
            metrics.set_registry(previous)
