"""Equivalence tests for the stacked multi-problem engine.

A stack must be a pure speedup over evaluating each member alone:
every deterministic reading, every ranking, every dominance matrix and
every seeded Monte Carlo slice has to match the per-problem
:class:`~repro.core.engine.BatchEvaluator` exactly — regardless of
which other problems share the stack.
"""

import numpy as np
import pytest

from repro.casestudy.problem import multimedia_problem
from repro.core.dominance import _lp_solver
from repro.core.engine import (
    BatchEvaluator,
    StackedEvaluator,
    StackedProblem,
    batch_dominance,
    compile_problem,
    stack_problems,
    stacked_dominance,
)

from ..conftest import make_small_problem


@pytest.fixture(scope="module")
def small_stack():
    members = [
        compile_problem(make_small_problem(name="plain")),
        compile_problem(make_small_problem(missing_cell=True, name="gappy")),
        compile_problem(make_small_problem(name="third")),
    ]
    return StackedProblem(members)


class TestStacking:
    def test_groups_by_shape_preserving_indices(self):
        compiled = [
            compile_problem(make_small_problem(name="a")),
            compile_problem(multimedia_problem()),
            compile_problem(make_small_problem(name="b")),
        ]
        stacks = stack_problems(compiled)
        assert [s.shape for s in stacks] == [(3, 3), (23, 14)]
        assert stacks[0].source_indices == (0, 2)
        assert stacks[1].source_indices == (1,)

    def test_tensor_shapes(self, small_stack):
        p, (n_alt, n_att) = small_stack.n_problems, small_stack.shape
        assert small_stack.u_avg.shape == (p, n_alt, n_att)
        assert small_stack.missing.shape == (p, n_alt, n_att)
        assert small_stack.w_low.shape == (p, n_att)
        assert small_stack.alt_key.shape == (p, n_att, n_alt)
        assert small_stack.key_low.shape[:2] == (p, n_att)

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValueError):
            StackedProblem(
                [
                    compile_problem(make_small_problem()),
                    compile_problem(multimedia_problem()),
                ]
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StackedProblem([])

    def test_misaligned_source_indices(self):
        member = compile_problem(make_small_problem())
        with pytest.raises(ValueError):
            StackedProblem([member], source_indices=[0, 1])


class TestDeterministicEquivalence:
    def test_utilities_bit_identical(self, small_stack):
        evaluator = StackedEvaluator(small_stack)
        mins = evaluator.minimum_utilities()
        avgs = evaluator.average_utilities()
        maxs = evaluator.maximum_utilities()
        for p, member in enumerate(small_stack.members):
            single = BatchEvaluator(member)
            assert np.array_equal(mins[p], single.minimum_utilities())
            assert np.array_equal(avgs[p], single.average_utilities())
            assert np.array_equal(maxs[p], single.maximum_utilities())

    def test_ranking_orders_match(self, small_stack):
        evaluator = StackedEvaluator(small_stack)
        orders = evaluator.ranking_orders()
        for p, member in enumerate(small_stack.members):
            assert np.array_equal(
                orders[p], BatchEvaluator(member).ranking_order()
            )

    def test_evaluate_all_matches_member_evaluations(self, small_stack):
        stacked = StackedEvaluator(small_stack).evaluate_all()
        for p, member in enumerate(small_stack.members):
            single = BatchEvaluator(member).evaluate()
            assert stacked[p].problem_name == single.problem_name
            for a, b in zip(stacked[p], single):
                assert (a.name, a.rank) == (b.name, b.rank)
                assert a.minimum == b.minimum
                assert a.average == b.average
                assert a.maximum == b.maximum

    def test_accepts_plain_sequence(self):
        members = [
            compile_problem(make_small_problem(name="x")),
            compile_problem(make_small_problem(name="y")),
        ]
        evaluator = StackedEvaluator(members)
        assert evaluator.n_problems == 2

    def test_scenario_ranks_match(self, small_stack):
        rng = np.random.default_rng(3)
        evaluator = StackedEvaluator(small_stack)
        weights = rng.dirichlet(
            np.ones(small_stack.n_attributes),
            size=(small_stack.n_problems, 6),
        )
        stacked_ranks = evaluator.scenario_ranks(weights)
        for p, member in enumerate(small_stack.members):
            single = BatchEvaluator(member).scenario_ranks(weights[p])
            assert np.array_equal(stacked_ranks[p], single)


class TestStackedMonteCarlo:
    @pytest.mark.parametrize("method", ["random", "rank_order", "intervals"])
    @pytest.mark.parametrize("mode", [False, "missing", True])
    def test_exact_match_per_member(self, small_stack, method, mode):
        """The tentpole contract: seeded per-problem RNG streams make
        stacked Monte Carlo output equal per-problem runs exactly."""
        evaluator = StackedEvaluator(small_stack)
        ranks, acceptance = evaluator.monte_carlo_ranks(
            method=method, n_simulations=193, seed=77, sample_utilities=mode
        )
        assert ranks.shape == (
            small_stack.n_problems,
            193,
            small_stack.n_alternatives,
        )
        for p, member in enumerate(small_stack.members):
            single_ranks, single_acc = BatchEvaluator(
                member
            ).monte_carlo_ranks(
                method=method,
                n_simulations=193,
                seed=77,
                sample_utilities=mode,
            )
            assert np.array_equal(ranks[p], single_ranks)
            assert acceptance[p] == single_acc

    def test_per_member_seed_sequence(self, small_stack):
        evaluator = StackedEvaluator(small_stack)
        seeds = [11, 22, 33]
        ranks, _ = evaluator.monte_carlo_ranks(
            n_simulations=64, seed=seeds, sample_utilities="missing"
        )
        for p, member in enumerate(small_stack.members):
            single, _ = BatchEvaluator(member).monte_carlo_ranks(
                n_simulations=64, seed=seeds[p], sample_utilities="missing"
            )
            assert np.array_equal(ranks[p], single)

    def test_seed_sequence_length_checked(self, small_stack):
        with pytest.raises(ValueError):
            StackedEvaluator(small_stack).monte_carlo_ranks(
                n_simulations=8, seed=[1, 2]
            )

    def test_simulations_positive(self, small_stack):
        with pytest.raises(ValueError):
            StackedEvaluator(small_stack).monte_carlo_ranks(n_simulations=0)

    def test_simulate_all_wraps_results(self, small_stack):
        results = StackedEvaluator(small_stack).simulate_all(
            n_simulations=32, seed=5, sample_utilities="missing"
        )
        assert len(results) == small_stack.n_problems
        for result, member in zip(results, small_stack.members):
            assert result.names == member.alternative_names
            assert result.n_simulations == 32

    def test_independent_of_stack_composition(self):
        """A member's Monte Carlo slice must not depend on its
        neighbours in the stack (the merge-determinism invariant)."""
        a = compile_problem(make_small_problem(name="a"))
        b = compile_problem(make_small_problem(missing_cell=True, name="b"))
        c = compile_problem(make_small_problem(name="c"))
        pair_ranks, _ = StackedEvaluator([a, b]).monte_carlo_ranks(
            n_simulations=128, seed=9, sample_utilities="missing"
        )
        triple_ranks, _ = StackedEvaluator([c, a, b]).monte_carlo_ranks(
            n_simulations=128, seed=9, sample_utilities="missing"
        )
        assert np.array_equal(pair_ranks[0], triple_ranks[1])
        assert np.array_equal(pair_ranks[1], triple_ranks[2])


class TestStackedDominance:
    def test_matches_per_member_batch_dominance(self, small_stack):
        solver = _lp_solver("scipy")
        stacked = stacked_dominance(small_stack, solver)
        assert stacked.shape == (
            small_stack.n_problems,
            small_stack.n_alternatives,
            small_stack.n_alternatives,
        )
        for p, member in enumerate(small_stack.members):
            assert np.array_equal(stacked[p], batch_dominance(member, solver))

    def test_evaluator_dominance_and_rank_intervals(self, small_stack):
        evaluator = StackedEvaluator(small_stack)
        matrices = evaluator.dominance_matrices()
        intervals = evaluator.rank_intervals_all()
        for p, member in enumerate(small_stack.members):
            single = BatchEvaluator(member)
            assert np.array_equal(matrices[p], single.dominance_matrix())
            assert intervals[p] == single.rank_intervals()
