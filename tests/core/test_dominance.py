"""Tests for dominance and potential optimality (§V screening)."""

import numpy as np
import pytest

from repro.core.dominance import (
    dominance_matrix,
    dominates,
    non_dominated,
    potentially_optimal,
    screen,
)
from repro.core.hierarchy import Hierarchy, ObjectiveNode
from repro.core.interval import Interval
from repro.core.model import AdditiveModel
from repro.core.performance import Alternative, PerformanceTable
from repro.core.problem import DecisionProblem
from repro.core.scales import linguistic_0_3
from repro.core.utility import banded_discrete_utility
from repro.core.weights import WeightSystem


def flat_problem(rows, spread=0.3):
    """A flat 2-attribute problem with the given (a, b) level rows."""
    scales = {"a": linguistic_0_3("a"), "b": linguistic_0_3("b")}
    table = PerformanceTable(
        scales,
        [Alternative(f"alt{i}", {"a": ra, "b": rb}) for i, (ra, rb) in enumerate(rows)],
    )
    hierarchy = Hierarchy(
        ObjectiveNode(
            "root",
            children=[ObjectiveNode("ca", attribute="a"), ObjectiveNode("cb", attribute="b")],
        )
    )
    weights = WeightSystem(
        hierarchy,
        {"ca": Interval(0.5 - spread, 0.5 + spread),
         "cb": Interval(0.5 - spread, 0.5 + spread)},
    )
    utilities = {
        "a": banded_discrete_utility(scales["a"]),
        "b": banded_discrete_utility(scales["b"]),
    }
    return DecisionProblem(hierarchy, table, utilities, weights)


class TestPairwiseDominance:
    def test_clear_dominance(self):
        model = AdditiveModel(flat_problem([(3, 3), (1, 1)]))
        assert dominates(model, "alt0", "alt1")
        assert not dominates(model, "alt1", "alt0")

    def test_equal_levels_do_not_dominate(self):
        """Band overlap at equal levels blocks dominance both ways."""
        model = AdditiveModel(flat_problem([(2, 2), (2, 2)]))
        assert not dominates(model, "alt0", "alt1")
        assert not dominates(model, "alt1", "alt0")

    def test_adjacent_levels_dominate_weakly(self):
        """u_low(2) = u_up(1) = 0.4: the worst case ties, the best case
        is strictly positive — dominance holds (>= 0 with > somewhere)."""
        model = AdditiveModel(flat_problem([(2, 2), (1, 1)]))
        assert dominates(model, "alt0", "alt1")

    def test_trade_off_is_incomparable(self):
        model = AdditiveModel(flat_problem([(3, 0), (0, 3)]))
        assert not dominates(model, "alt0", "alt1")
        assert not dominates(model, "alt1", "alt0")

    def test_solvers_agree(self):
        model = AdditiveModel(flat_problem([(3, 3), (1, 1), (3, 0), (2, 2)]))
        d_scipy = dominance_matrix(model, solver="scipy")
        d_simplex = dominance_matrix(model, solver="simplex")
        assert np.array_equal(d_scipy, d_simplex)

    def test_unknown_solver(self):
        model = AdditiveModel(flat_problem([(3, 3), (1, 1)]))
        with pytest.raises(ValueError):
            dominates(model, "alt0", "alt1", solver="mystery")


class TestMatrixProperties:
    def test_irreflexive(self):
        model = AdditiveModel(flat_problem([(3, 2), (2, 3), (1, 1)]))
        matrix = dominance_matrix(model)
        assert not matrix.diagonal().any()

    def test_asymmetric(self):
        model = AdditiveModel(flat_problem([(3, 3), (2, 1), (1, 1), (0, 0)]))
        matrix = dominance_matrix(model)
        assert not (matrix & matrix.T).any()

    def test_transitive_on_case_study(self, case_model):
        matrix = dominance_matrix(case_model)
        n = matrix.shape[0]
        for i in range(n):
            for j in range(n):
                if matrix[i, j]:
                    for k in range(n):
                        if matrix[j, k]:
                            assert matrix[i, k], (
                                "dominance must be transitive"
                            )


class TestNonDominatedAndPO:
    def test_non_dominated_set_precise_best(self):
        """With the best level pinned at 1.0, (3,3) dominates (3,0):
        equal best levels give the adversary no slack."""
        model = AdditiveModel(flat_problem([(3, 3), (1, 1), (3, 0)]))
        assert set(non_dominated(model)) == {"alt0"}

    def test_imprecise_best_protects_equal_levels(self):
        """With best levels imprecise ([0.8, 1]), the adversary can put
        (3,0)'s best level above (3,3)'s — no dominance."""
        from repro.core.utility import banded_discrete_utility
        problem = flat_problem([(3, 3), (1, 1), (3, 0)])
        utilities = {
            attr: banded_discrete_utility(
                problem.table.scale_of(attr), best_is_precise=False
            )
            for attr in ("a", "b")
        }
        problem = DecisionProblem(
            problem.hierarchy, problem.table, utilities, problem.weights
        )
        model = AdditiveModel(problem)
        assert set(non_dominated(model)) == {"alt0", "alt2"}

    def test_potential_optimality_requires_a_winner_weighting(self):
        # alt2 (2,2) is never best: alt0 wins when a matters, alt1 when
        # b does, and at every weighting one of them beats alt2's best
        # case (their level-3 upper is 1.0 vs alt2's 0.6 / funct gap).
        model = AdditiveModel(flat_problem([(3, 2), (2, 3), (1, 1)], spread=0.4))
        po = potentially_optimal(model)
        assert "alt0" in po and "alt1" in po
        assert "alt2" not in po

    def test_singleton_among(self, case_model):
        assert potentially_optimal(case_model, among=["COMM"]) == ("COMM",)

    def test_unknown_among(self, case_model):
        with pytest.raises(KeyError):
            potentially_optimal(case_model, among=["Nope"])

    def test_screen_pipeline(self):
        model = AdditiveModel(flat_problem([(3, 3), (1, 1), (3, 0)]))
        result = screen(model)
        assert set(result.discarded) == {"alt1", "alt2"}
        assert set(result.survivors) == {"alt0"}
        assert set(result.non_dominated) >= set(result.potentially_optimal)


class TestCaseStudyScreening:
    def test_paper_screening_outcome(self, case_model):
        """§V: 20 of 23 non-dominated and potentially optimal."""
        result = screen(case_model)
        assert len(result.non_dominated) == 20
        assert len(result.potentially_optimal) == 20
        assert set(result.discarded) == {
            "Kanzaki Music", "MPEG7 Ontology", "Photography Ontology",
        }

    def test_best_ranked_is_potentially_optimal(self, case_model):
        assert "Media Ontology" in potentially_optimal(case_model)
