"""Tests for alternatives and the performance table."""

import pytest

from repro.core.performance import Alternative, PerformanceTable, UncertainValue
from repro.core.scales import MISSING, ContinuousScale, linguistic_0_3

SCALES = {
    "speed": ContinuousScale("speed", 0.0, 10.0),
    "grade": linguistic_0_3("grade"),
}


def table(**overrides):
    rows = {
        "a": {"speed": 5.0, "grade": 2},
        "b": {"speed": 9.0, "grade": MISSING},
    }
    rows.update(overrides)
    return PerformanceTable(
        SCALES, [Alternative(name, perf) for name, perf in rows.items()]
    )


class TestUncertainValue:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            UncertainValue(2.0, 1.0, 3.0)

    def test_interval_and_precise(self):
        uv = UncertainValue(1.0, 2.0, 4.0)
        assert uv.interval.lower == 1.0 and uv.interval.upper == 4.0
        assert UncertainValue.precise(2.0).interval.is_point


class TestAlternative:
    def test_performance_lookup(self):
        alt = Alternative("a", {"speed": 5.0})
        assert alt.performance("speed") == 5.0
        with pytest.raises(KeyError):
            alt.performance("grade")

    def test_is_missing(self):
        alt = Alternative("a", {"speed": MISSING})
        assert alt.is_missing("speed")

    def test_with_performance_copies(self):
        alt = Alternative("a", {"speed": 5.0})
        other = alt.with_performance("speed", 6.0)
        assert alt.performance("speed") == 5.0
        assert other.performance("speed") == 6.0


class TestTableValidation:
    def test_valid_table(self):
        t = table()
        assert len(t) == 2
        assert t.alternative_names == ("a", "b")

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            PerformanceTable(
                SCALES,
                [
                    Alternative("a", {"speed": 1.0, "grade": 1}),
                    Alternative("a", {"speed": 2.0, "grade": 2}),
                ],
            )

    def test_missing_attribute_row(self):
        with pytest.raises(KeyError):
            table(c={"speed": 1.0})

    def test_extra_attribute(self):
        with pytest.raises(ValueError):
            table(c={"speed": 1.0, "grade": 1, "bogus": 3})

    def test_invalid_value_on_scale(self):
        with pytest.raises(ValueError):
            table(c={"speed": 11.0, "grade": 1})
        with pytest.raises(ValueError):
            table(c={"speed": 1.0, "grade": 9})

    def test_uncertain_value_validated(self):
        with pytest.raises(ValueError):
            table(c={"speed": UncertainValue(1.0, 5.0, 11.0), "grade": 1})
        t = table(c={"speed": UncertainValue(1.0, 5.0, 9.0), "grade": 1})
        assert isinstance(t["c"].performance("speed"), UncertainValue)

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            PerformanceTable({}, [Alternative("a", {})])
        with pytest.raises(ValueError):
            PerformanceTable(SCALES, [])


class TestMissingHelpers:
    def test_attributes_with_missing(self):
        assert table().attributes_with_missing() == ("grade",)

    def test_missing_cells(self):
        assert table().missing_cells() == (("b", "grade"),)

    def test_replacing_missing_with_worst(self):
        replaced = table().replacing_missing_with_worst()
        assert replaced["b"].performance("grade") == 0
        assert replaced.missing_cells() == ()
        # original untouched
        assert table()["b"].is_missing("grade")

    def test_subset(self):
        sub = table().subset(["b"])
        assert sub.alternative_names == ("b",)
        with pytest.raises(KeyError):
            table().subset(["nope"])

    def test_case_study_missing_cells(self, case_problem):
        """§III: some criteria have unknown performances; all of ours
        sit on provenance or inaccessible-artefact criteria."""
        cells = case_problem.table.missing_cells()
        assert len(cells) > 0
        structural_ok = {
            "external_knowledge", "code_clarity", "knowledge_extraction",
            "naming_conventions", "implementation_language",
            "former_evaluation", "team_reputation", "purpose_reliability",
        }
        assert all(attr in structural_ok for _, attr in cells)
