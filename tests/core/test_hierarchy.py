"""Tests for the objective hierarchy."""

import pytest

from repro.core.hierarchy import Hierarchy, ObjectiveNode


def tiny() -> Hierarchy:
    return Hierarchy(
        ObjectiveNode(
            "root",
            children=[
                ObjectiveNode("a", attribute="x"),
                ObjectiveNode(
                    "b",
                    children=[
                        ObjectiveNode("b1", attribute="y"),
                        ObjectiveNode("b2", attribute="z"),
                    ],
                ),
            ],
        )
    )


class TestValidation:
    def test_leaf_needs_attribute(self):
        with pytest.raises(ValueError):
            Hierarchy(ObjectiveNode("root", children=[ObjectiveNode("leaf")]))

    def test_node_cannot_have_both(self):
        with pytest.raises(ValueError):
            ObjectiveNode("bad", children=[ObjectiveNode("c", attribute="x")],
                          attribute="y")

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            Hierarchy(
                ObjectiveNode(
                    "root",
                    children=[
                        ObjectiveNode("a", attribute="x"),
                        ObjectiveNode("a", attribute="y"),
                    ],
                )
            )

    def test_duplicate_attributes(self):
        with pytest.raises(ValueError):
            Hierarchy(
                ObjectiveNode(
                    "root",
                    children=[
                        ObjectiveNode("a", attribute="x"),
                        ObjectiveNode("b", attribute="x"),
                    ],
                )
            )


class TestNavigation:
    def test_lookup(self):
        h = tiny()
        assert h.node("b1").attribute == "y"
        assert "b2" in h and "nope" not in h
        with pytest.raises(KeyError):
            h.node("nope")

    def test_parent_and_path(self):
        h = tiny()
        assert h.parent_of("b1").name == "b"
        assert h.parent_of("root") is None
        assert [n.name for n in h.path_to("b2")] == ["root", "b", "b2"]
        assert h.depth_of("b2") == 2
        assert h.depth_of("root") == 0

    def test_leaves_and_attributes(self):
        h = tiny()
        assert [l.name for l in h.leaves()] == ["a", "b1", "b2"]
        assert h.attribute_names == ("x", "y", "z")
        assert h.attributes_under("b") == ("y", "z")

    def test_leaf_for_attribute(self):
        h = tiny()
        assert h.leaf_for_attribute("z").name == "b2"
        with pytest.raises(KeyError):
            h.leaf_for_attribute("w")

    def test_subtree(self):
        sub = tiny().subtree("b")
        assert sub.root.name == "b"
        assert sub.attribute_names == ("y", "z")


class TestRender:
    def test_render_contains_all_nodes(self):
        text = tiny().render()
        for name in ("root", "a", "b", "b1", "b2"):
            assert name in text

    def test_render_annotation(self):
        text = tiny().render(lambda n: "leaf" if n.is_leaf else "")
        assert text.count("leaf") == 3


class TestFig1:
    def test_paper_hierarchy_shape(self):
        from repro.neon.criteria import OBJECTIVES, build_hierarchy

        h = build_hierarchy()
        assert [c.name for c in h.root.children] == list(OBJECTIVES)
        assert len(h.leaves()) == 14
        sizes = [len(c.children) for c in h.root.children]
        assert sizes == [2, 3, 4, 5]
