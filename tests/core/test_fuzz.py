"""Tests for the differential fuzz harness (clean, broken-kernel, replay)."""

import json

import pytest

from repro import fuzz
from repro.core import engine, genreg
from repro.core.genreg import preset


def test_clean_run_has_zero_divergences(tmp_path):
    report = fuzz.run_fuzz(cases=24, seed=0, out_dir=tmp_path)
    assert report.ok
    assert report.divergences == []
    assert report.repro_files == []
    assert report.n_checks > 24  # several oracles per case
    assert list(tmp_path.iterdir()) == []  # nothing emitted when clean


def test_run_is_deterministic():
    a = fuzz.run_fuzz(cases=16, seed=5)
    b = fuzz.run_fuzz(cases=16, seed=5)
    assert (a.ok, a.n_checks, a.divergences) == (b.ok, b.n_checks, b.divergences)


def test_main_exits_zero_on_clean_run(tmp_path, capsys):
    code = fuzz.main(
        ["--cases", "8", "--seed", "1", "--out", str(tmp_path / "repros")]
    )
    assert code == 0
    assert "clean" in capsys.readouterr().out


class TestBrokenKernel:
    """A deliberately wrong tensor kernel must fail loudly with a repro."""

    @pytest.fixture()
    def broken_average(self, monkeypatch):
        original = engine.StackedEvaluator.average_utilities

        def skewed(self):
            out = original(self).copy()
            out[..., 0] += 1e-9
            return out

        monkeypatch.setattr(engine.StackedEvaluator, "average_utilities", skewed)

    def test_divergence_detected_and_repro_emitted(self, tmp_path, broken_average):
        report = fuzz.run_fuzz(cases=8, seed=0, out_dir=tmp_path)
        assert not report.ok
        assert any(d.oracle == "stacked-eval" for d in report.divergences)
        assert report.repro_files
        payload = json.loads(report.repro_files[0].read_text())
        assert payload["format"] == fuzz.REPRO_FORMAT
        assert payload["oracle"] == "stacked-eval"
        genreg.RegistrySpec.from_dict(payload["spec"])  # spec is replayable

    def test_main_exits_nonzero(self, tmp_path, broken_average, capsys):
        code = fuzz.main(
            ["--cases", "8", "--seed", "0", "--out", str(tmp_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGE" in out and "repro file" in out

    def test_shrinking_simplifies_the_failing_spec(self, tmp_path, broken_average):
        report = fuzz.run_fuzz(cases=8, seed=0, out_dir=tmp_path, shrink=True)
        shrunk = genreg.RegistrySpec.from_dict(
            json.loads(report.repro_files[0].read_text())["spec"]
        )
        full = fuzz.run_fuzz(cases=8, seed=0, shrink=False).spec
        # The reducer must have tightened at least one axis of the sweep.
        assert (
            shrunk.alternatives[1] < full.alternatives[1]
            or shrunk.max_attributes < full.max_attributes
            or shrunk.depth[1] < full.depth[1]
        )

    def test_replay_reproduces_then_clears_after_fix(
        self, tmp_path, broken_average, monkeypatch
    ):
        report = fuzz.run_fuzz(cases=8, seed=0, out_dir=tmp_path)
        repro = report.repro_files[0]
        assert fuzz.replay(repro)  # still broken: divergence reproduces
        monkeypatch.undo()  # restore the healthy kernel
        assert fuzz.replay(repro) == []


def test_replay_rejects_non_repro_payload(tmp_path):
    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="not a repro-fuzz/1"):
        fuzz.replay(bogus)


def test_check_chunk_covers_degenerate_preset():
    """The degenerate preset (single alternative, all-missing rows,
    zero-width weights) passes every oracle including the LP screens."""
    spec = preset("degenerate", seed=0, n_workspaces=8)
    found, checks = fuzz.check_chunk(
        spec, list(range(8)), with_dominance=True
    )
    assert found == []
    assert checks > 8
