"""Tests for attribute scales and the MISSING marker."""

import pickle

import pytest

from repro.core.scales import (
    MISSING,
    ContinuousScale,
    DiscreteScale,
    MissingType,
    linguistic_0_3,
)


class TestMissing:
    def test_singleton(self):
        assert MissingType() is MISSING

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING

    def test_repr(self):
        assert repr(MISSING) == "MISSING"


class TestDiscreteScale:
    def test_levels_and_codes(self):
        scale = linguistic_0_3("purpose")
        assert len(scale) == 4
        assert scale.code_of("medium") == 2
        assert scale.label_of(3) == "high"
        assert scale.worst == 0 and scale.best == 3

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            linguistic_0_3("x").code_of("great")

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            linguistic_0_3("x").label_of(7)

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            DiscreteScale("bad", ("only",))

    def test_duplicate_labels(self):
        with pytest.raises(ValueError):
            DiscreteScale("bad", ("a", "a"))

    @pytest.mark.parametrize(
        "value,expected",
        [(0, True), (3, True), (2.0, True), (4, False), (-1, False),
         (1.5, False), (True, False), ("2", False), (MISSING, False)],
    )
    def test_is_valid(self, value, expected):
        assert linguistic_0_3("x").is_valid(value) is expected


class TestContinuousScale:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            ContinuousScale("bad", 2.0, 1.0)

    def test_direction(self):
        up = ContinuousScale("more", 0.0, 3.0, ascending=True)
        down = ContinuousScale("less", 0.0, 3.0, ascending=False)
        assert up.worst == 0.0 and up.best == 3.0
        assert down.worst == 3.0 and down.best == 0.0

    def test_normalise(self):
        up = ContinuousScale("more", 0.0, 4.0)
        assert up.normalise(1.0) == pytest.approx(0.25)
        down = ContinuousScale("less", 0.0, 4.0, ascending=False)
        assert down.normalise(1.0) == pytest.approx(0.75)

    @pytest.mark.parametrize(
        "value,expected",
        [(0.0, True), (3.0, True), (1.5, True), (-0.1, False),
         (3.1, False), (True, False), ("1", False)],
    )
    def test_is_valid(self, value, expected):
        scale = ContinuousScale("v", 0.0, 3.0)
        assert scale.is_valid(value) is expected
