"""Tests for the Monte Carlo samplers and rank statistics (§V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AdditiveModel
from repro.core.montecarlo import (
    MonteCarloResult,
    missing_mask,
    sample_in_intervals,
    sample_rank_order,
    sample_simplex,
    simulate,
)


class TestSimplexSampler:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        w = sample_simplex(5, 200, rng)
        assert w.shape == (200, 5)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert np.all(w >= 0)

    def test_mean_is_uniform(self):
        rng = np.random.default_rng(2)
        w = sample_simplex(4, 20_000, rng)
        assert w.mean(axis=0) == pytest.approx([0.25] * 4, abs=0.01)

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            sample_simplex(0, 10, rng)
        with pytest.raises(ValueError):
            sample_simplex(3, 0, rng)


class TestRankOrderSampler:
    def test_total_order_preserved(self):
        rng = np.random.default_rng(4)
        groups = [[2], [0], [1]]  # attr2 most important, then 0, then 1
        w = sample_rank_order(groups, 3, 500, rng)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert np.all(w[:, 2] >= w[:, 0] - 1e-12)
        assert np.all(w[:, 0] >= w[:, 1] - 1e-12)

    def test_partial_order(self):
        rng = np.random.default_rng(5)
        groups = [[0, 1], [2]]
        w = sample_rank_order(groups, 3, 500, rng)
        assert np.all(np.minimum(w[:, 0], w[:, 1]) >= w[:, 2] - 1e-12)
        # within the group both orders occur
        assert (w[:, 0] > w[:, 1]).any() and (w[:, 1] > w[:, 0]).any()

    def test_groups_must_partition(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            sample_rank_order([[0], [0, 1]], 3, 10, rng)
        with pytest.raises(ValueError):
            sample_rank_order([[0]], 2, 10, rng)


class TestIntervalSampler:
    def test_renormalised_rows(self):
        rng = np.random.default_rng(7)
        lower = np.array([0.1, 0.2, 0.3])
        upper = np.array([0.3, 0.4, 0.6])
        w, acceptance = sample_in_intervals(lower, upper, 300, rng)
        assert acceptance == 1.0
        assert np.allclose(w.sum(axis=1), 1.0)

    def test_rejection_keeps_box(self):
        rng = np.random.default_rng(8)
        lower = np.array([0.2, 0.2, 0.2])
        upper = np.array([0.5, 0.5, 0.5])
        w, acceptance = sample_in_intervals(
            lower, upper, 200, rng, reject_outside=True
        )
        assert 0 < acceptance <= 1.0
        assert np.all(w >= lower - 1e-9) and np.all(w <= upper + 1e-9)

    def test_infeasible_box(self):
        rng = np.random.default_rng(9)
        with pytest.raises(ValueError):
            sample_in_intervals(
                np.array([0.6, 0.6]), np.array([0.7, 0.7]), 10, rng
            )

    def test_bad_bounds(self):
        rng = np.random.default_rng(10)
        with pytest.raises(ValueError):
            sample_in_intervals(np.array([0.5]), np.array([0.4]), 10, rng)


class TestSimulate:
    @pytest.mark.parametrize("method", ["random", "rank_order", "intervals"])
    def test_rank_matrix_is_valid(self, small_problem, method):
        result = simulate(small_problem, method=method, n_simulations=64, seed=0)
        assert result.n_simulations == 64
        sorted_rows = np.sort(result.ranks, axis=1)
        assert np.all(sorted_rows == np.arange(1, 4))

    def test_unknown_method(self, small_problem):
        with pytest.raises(ValueError):
            simulate(small_problem, method="quantum", n_simulations=8)

    def test_seed_reproducibility(self, small_problem):
        a = simulate(small_problem, n_simulations=128, seed=42)
        b = simulate(small_problem, n_simulations=128, seed=42)
        assert np.array_equal(a.ranks, b.ranks)

    def test_sample_utilities_modes(self, small_problem_missing):
        for mode in (False, True, "all", "missing"):
            result = simulate(
                small_problem_missing,
                n_simulations=32,
                seed=1,
                sample_utilities=mode,
            )
            assert result.n_simulations == 32
        with pytest.raises(ValueError):
            simulate(small_problem_missing, n_simulations=8, sample_utilities="some")

    def test_missing_sampling_moves_only_missing_rows(self, small_problem_missing):
        """Without missing draws, a fixed weight-free gap keeps ranks
        constant; the alternative with the unknown cell fluctuates."""
        result = simulate(
            small_problem_missing,
            method="intervals",
            n_simulations=400,
            seed=3,
            sample_utilities="missing",
        )
        assert result.ranks_of("mid").std() > 0

    def test_missing_mask(self, small_problem_missing):
        model = AdditiveModel(small_problem_missing)
        mask = missing_mask(small_problem_missing, model)
        i = model.alternative_names.index("mid")
        j = model.attribute_names.index("support")
        assert mask[i, j]
        assert mask.sum() == 1


class TestResultStatistics:
    def make_result(self):
        ranks = np.array([[1, 2, 3], [1, 2, 3], [2, 1, 3], [1, 2, 3]])
        return MonteCarloResult(("a", "b", "c"), ranks, "intervals")

    def test_statistics(self):
        stats = self.make_result().statistics_for("a")
        assert stats.mode == 1
        assert stats.minimum == 1 and stats.maximum == 2
        assert stats.mean == pytest.approx(1.25)
        assert stats.fluctuation == 1

    def test_ever_best(self):
        assert self.make_result().ever_best() == ("a", "b")

    def test_names_by_mean_rank(self):
        assert self.make_result().names_by_mean_rank() == ("a", "b", "c")

    def test_boxplot_summary(self):
        box = self.make_result().boxplot_summary()
        c = next(s for s in box if s.name == "c")
        assert c.median == 3 and c.whisker_low == 3 and c.whisker_high == 3

    def test_max_fluctuation(self):
        assert self.make_result().max_fluctuation() == 1
        assert self.make_result().max_fluctuation(["c"]) == 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            self.make_result().ranks_of("nope")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MonteCarloResult(("a",), np.ones((3, 2), dtype=int), "random")


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=200))
def test_simplex_sampler_always_valid(n_attrs, n_samples):
    rng = np.random.default_rng(n_attrs * 1000 + n_samples)
    w = sample_simplex(n_attrs, n_samples, rng)
    assert np.allclose(w.sum(axis=1), 1.0)
    assert np.all(w >= 0)
