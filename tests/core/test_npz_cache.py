"""Tests for the persisted ``.npz`` compile-artifact cache.

Covers the satellite contract: round-trip equality with JSON-compiled
arrays, stale-hash invalidation, and concurrent-writer safety.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import workspace
from repro.core.engine import BatchEvaluator, CompiledProblem, compile_problem

from ..conftest import make_small_problem

ARRAY_FIELDS = workspace._ARRAY_FIELDS


@pytest.fixture()
def saved_workspace(tmp_path):
    problem = make_small_problem(missing_cell=True)
    path = tmp_path / "ws.json"
    workspace.save(problem, path)
    return problem, path


class TestRoundTrip:
    def test_arrays_equal_json_compile(self, saved_workspace):
        problem, path = saved_workspace
        cold = workspace.load_compiled_fast(path)  # compiles, writes npz
        warm = workspace.load_compiled_fast(path)  # loads npz
        reference = compile_problem(problem)
        for loaded in (cold, warm):
            for field in ARRAY_FIELDS:
                assert np.array_equal(
                    getattr(loaded, field), getattr(reference, field)
                ), field
            assert loaded.name == reference.name
            assert loaded.alternative_names == reference.alternative_names
            assert loaded.attribute_names == reference.attribute_names

    def test_artifact_sits_next_to_json(self, saved_workspace):
        _, path = saved_workspace
        workspace.load_compiled_fast(path)
        npz = workspace.compiled_array_path(path)
        assert npz == path.with_suffix(".npz")
        assert npz.is_file()

    def test_fast_path_skips_object_graph(self, saved_workspace):
        _, path = saved_workspace
        workspace.load_compiled_fast(path)
        warm = workspace.load_compiled_fast(path)
        assert warm.problem is None  # no JSON parse happened
        assert isinstance(warm, CompiledProblem)

    def test_loaded_form_evaluates_identically(self, saved_workspace):
        problem, path = saved_workspace
        workspace.load_compiled_fast(path)
        warm = workspace.load_compiled_fast(path)
        reference = compile_problem(problem)
        ranks_a, _ = BatchEvaluator(warm).monte_carlo_ranks(
            n_simulations=128, seed=13, sample_utilities="missing"
        )
        ranks_b, _ = BatchEvaluator(reference).monte_carlo_ranks(
            n_simulations=128, seed=13, sample_utilities="missing"
        )
        assert np.array_equal(ranks_a, ranks_b)

    def test_no_refresh_leaves_no_artifact(self, saved_workspace):
        _, path = saved_workspace
        compiled = workspace.load_compiled_fast(path, refresh=False)
        assert compiled.n_alternatives == 3
        assert not workspace.compiled_array_path(path).exists()

    def test_non_mmap_load_equal(self, saved_workspace):
        _, path = saved_workspace
        workspace.load_compiled_fast(path)
        npz = workspace.compiled_array_path(path)
        mmapped = workspace.load_compiled_arrays(npz, mmap_arrays=True)
        copied = workspace.load_compiled_arrays(npz, mmap_arrays=False)
        for key in copied:
            assert np.array_equal(mmapped[key], copied[key]), key


class TestStaleHashInvalidation:
    def test_changed_json_recompiles_and_rewrites(self, saved_workspace):
        _, path = saved_workspace
        workspace.load_compiled_fast(path)
        data = json.loads(path.read_text())
        data["name"] = "renamed"
        path.write_text(json.dumps(data, indent=2, sort_keys=True))
        reloaded = workspace.load_compiled_fast(path)
        assert reloaded.name == "renamed"
        arrays = workspace.load_compiled_arrays(
            workspace.compiled_array_path(path)
        )
        assert str(arrays["problem_name"]) == "renamed"
        assert str(arrays["source_sha"]) == workspace._file_sha256(path)

    def test_cosmetic_reformat_invalidates_by_bytes(self, saved_workspace):
        """A reformatted file re-keys the artifact (raw-byte freshness),
        but the recompiled arrays stay semantically identical."""
        problem, path = saved_workspace
        workspace.load_compiled_fast(path)
        before = workspace.load_compiled_arrays(
            workspace.compiled_array_path(path)
        )
        path.write_text(json.dumps(json.loads(path.read_text())))  # re-dump
        after_compiled = workspace.load_compiled_fast(path)
        after = workspace.load_compiled_arrays(
            workspace.compiled_array_path(path)
        )
        assert str(before["source_sha"]) != str(after["source_sha"])
        assert str(before["content_hash"]) == str(after["content_hash"])
        reference = compile_problem(problem)
        for field in ARRAY_FIELDS:
            assert np.array_equal(
                getattr(after_compiled, field), getattr(reference, field)
            )

    def test_corrupt_artifact_falls_back_to_json(self, saved_workspace):
        _, path = saved_workspace
        workspace.load_compiled_fast(path)
        npz = workspace.compiled_array_path(path)
        npz.write_bytes(b"not a zip archive at all")
        compiled = workspace.load_compiled_fast(path)
        assert compiled.n_alternatives == 3
        # and the artifact was healed
        assert workspace.load_compiled_arrays(npz) is not None

    def test_corrupt_member_offset_is_cache_miss(self, saved_workspace):
        """A valid central directory pointing at a bad local-header
        offset (in-place corruption) must read as a miss, not raise."""
        _, path = saved_workspace
        workspace.load_compiled_fast(path)
        npz = workspace.compiled_array_path(path)
        blob = bytearray(npz.read_bytes())
        # point the first central-directory entry's local-header offset
        # (4 bytes at position 42 of the PK\x01\x02 record) past EOF so
        # the member read lands outside the mapped buffer
        entry = blob.find(b"PK\x01\x02")
        assert entry != -1
        blob[entry + 42:entry + 46] = (0x7FFFFFFF).to_bytes(4, "little")
        npz.write_bytes(bytes(blob))
        assert workspace.load_compiled_arrays(npz) is None
        compiled = workspace.load_compiled_fast(path)  # heals via JSON
        assert compiled.n_alternatives == 3

    def test_missing_artifact_returns_none(self, tmp_path):
        assert workspace.load_compiled_arrays(tmp_path / "nope.npz") is None

    def test_wrong_format_returns_none(self, tmp_path):
        target = tmp_path / "bad.npz"
        np.savez(target, format=np.array("some-other-format/9"))
        assert workspace.load_compiled_arrays(target) is None


class TestWarmCache:
    def test_warms_only_stale_entries(self, tmp_path):
        paths = []
        for i in range(3):
            path = tmp_path / f"ws{i}.json"
            workspace.save(make_small_problem(name=f"p{i}"), path)
            paths.append(path)
        assert workspace.warm_compiled_cache(paths) == 3
        assert workspace.warm_compiled_cache(paths) == 0  # all fresh
        data = json.loads(paths[1].read_text())
        data["name"] = "poked"
        paths[1].write_text(json.dumps(data, sort_keys=True))
        assert workspace.warm_compiled_cache(paths) == 1


class TestConcurrentWriters:
    def test_parallel_writers_leave_valid_artifact(self, saved_workspace):
        problem, path = saved_workspace
        compiled = compile_problem(problem)
        npz = workspace.compiled_array_path(path)
        sha = workspace._file_sha256(path)
        semantic = workspace.content_hash(problem)

        def write(_):
            workspace.save_compiled_arrays(compiled, npz, sha, semantic)
            return workspace.load_compiled_arrays(npz) is not None

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(write, range(32)))
        assert all(outcomes)
        final = workspace.load_compiled_arrays(npz)
        assert str(final["source_sha"]) == sha
        for field in ARRAY_FIELDS:
            assert np.array_equal(final[field], getattr(compiled, field))
        # no temp files left behind
        leftovers = [
            p for p in path.parent.iterdir() if ".tmp." in p.name
        ]
        assert leftovers == []

    def test_failed_write_unlinks_its_temp_file(
        self, saved_workspace, monkeypatch
    ):
        """A writer that dies mid-publish must not orphan its temp
        sibling next to the artifact."""
        import os

        problem, path = saved_workspace
        compiled = compile_problem(problem)
        npz = workspace.compiled_array_path(path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            workspace.save_compiled_arrays(
                compiled,
                npz,
                workspace._file_sha256(path),
                workspace.content_hash(problem),
            )
        leftovers = [p for p in path.parent.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_sweep_temp_artifacts_removes_only_strays(self, saved_workspace):
        problem, path = saved_workspace
        npz = workspace.compiled_array_path(path)
        workspace.save_compiled_arrays(
            compile_problem(problem),
            npz,
            workspace._file_sha256(path),
            workspace.content_hash(problem),
        )
        stray = path.parent / ".ws.npz.tmp.999.ff"
        stray.write_bytes(b"partial")
        removed = workspace.sweep_temp_artifacts(path.parent)
        assert removed == 1
        assert not stray.exists()
        assert npz.exists()

    def test_parallel_load_compiled_fast(self, saved_workspace):
        """Racing readers/writers on a cold cache all get valid forms."""
        problem, path = saved_workspace
        reference = compile_problem(problem)

        def load(_):
            return workspace.load_compiled_fast(path)

        with ThreadPoolExecutor(max_workers=8) as pool:
            forms = list(pool.map(load, range(16)))
        for form in forms:
            for field in ARRAY_FIELDS:
                assert np.array_equal(
                    getattr(form, field), getattr(reference, field)
                )
