"""Tests for the additive model and evaluation (§IV semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AdditiveModel, evaluate
from repro.core.performance import UncertainValue

from ..conftest import make_small_problem


class TestTriplets:
    def test_min_avg_max_ordering(self, small_problem_missing):
        model = AdditiveModel(small_problem_missing)
        mins = model.minimum_utilities()
        avgs = model.average_utilities()
        maxs = model.maximum_utilities()
        # With lower weight bounds summing below 1 the minimum sits
        # below the average, and conversely for the maximum.
        assert np.all(mins <= avgs + 1e-12)
        assert np.all(avgs <= maxs + 1e-12)

    def test_evaluation_sorted_by_average(self, small_problem):
        ev = evaluate(small_problem)
        avgs = [row.average for row in ev]
        assert avgs == sorted(avgs, reverse=True)
        assert [row.rank for row in ev] == [1, 2, 3]

    def test_premium_wins_small_problem(self, small_problem):
        assert evaluate(small_problem).best.name == "premium"

    def test_missing_value_uses_unit_interval(self, small_problem_missing):
        model = AdditiveModel(small_problem_missing)
        j = model.attribute_names.index("support")
        i = model.alternative_names.index("mid")
        assert model.u_low[i, j] == pytest.approx(0.0)
        assert model.u_avg[i, j] == pytest.approx(0.5)
        assert model.u_up[i, j] == pytest.approx(1.0)

    def test_uncertain_value_envelopes(self, small_problem):
        problem = small_problem
        table = problem.table
        alt = table["mid"].with_performance(
            "price", UncertainValue(600.0, 800.0, 1000.0)
        )
        from repro.core.performance import PerformanceTable
        from repro.core.problem import DecisionProblem

        new_table = PerformanceTable(
            {a: table.scale_of(a) for a in table.attribute_names},
            [alt if x.name == "mid" else x for x in table.alternatives],
        )
        new_problem = DecisionProblem(
            problem.hierarchy, new_table, problem.utilities, problem.weights
        )
        model = AdditiveModel(new_problem)
        i = model.alternative_names.index("mid")
        j = model.attribute_names.index("price")
        # price is descending: utility low end comes from the max price
        fn = problem.utility_function("price")
        assert model.u_low[i, j] == pytest.approx(fn.utility(1000.0).lower)
        assert model.u_up[i, j] == pytest.approx(fn.utility(600.0).upper)
        assert model.u_avg[i, j] == pytest.approx(fn.utility(800.0).midpoint)


class TestWeightVectorEvaluation:
    def test_vector_and_matrix_forms(self, small_problem):
        model = AdditiveModel(small_problem)
        w = model.w_avg
        single = model.utilities_for_weights(w)
        batch = model.utilities_for_weights(np.vstack([w, w]))
        assert single == pytest.approx(model.average_utilities())
        assert batch[:, 0] == pytest.approx(single)
        assert batch[:, 1] == pytest.approx(single)

    def test_shape_errors(self, small_problem):
        model = AdditiveModel(small_problem)
        with pytest.raises(ValueError):
            model.utilities_for_weights(np.ones(5))
        with pytest.raises(ValueError):
            model.utilities_for_weights(np.ones((2, 5)))


class TestSubtreeEvaluation:
    def test_restricted_ranking_uses_subtree_only(self, small_problem):
        ev = evaluate(small_problem, "quality")
        # Quality ignores price: premium (3,3) > mid (2,2) > cheap (1,1)
        assert ev.names_by_rank == ("premium", "mid", "cheap")

    def test_restricting_to_root_is_identity(self, small_problem):
        assert (
            evaluate(small_problem, "overall").names_by_rank
            == evaluate(small_problem).names_by_rank
        )


class TestEvaluationObject:
    def test_row_accessors(self, small_problem):
        ev = evaluate(small_problem)
        best = ev.best
        assert ev.rank_of(best.name) == 1
        assert ev.average_of(best.name) == pytest.approx(best.average)
        assert ev.utility_interval(best.name).lower == pytest.approx(best.minimum)
        with pytest.raises(KeyError):
            ev.row("nope")

    def test_top(self, small_problem):
        ev = evaluate(small_problem)
        assert [r.name for r in ev.top(2)] == list(ev.names_by_rank[:2])

    def test_overlap_count(self, case_problem):
        """§IV: 'the output utility intervals are very overlapped'."""
        ev = evaluate(case_problem)
        assert ev.overlap_count() == len(ev) - 1


@settings(max_examples=30)
@given(st.floats(min_value=300.0, max_value=1500.0))
def test_price_improvement_never_hurts(price):
    """Lowering the price of 'mid' can only improve its average rank."""
    base = make_small_problem()
    from repro.core.performance import PerformanceTable
    from repro.core.problem import DecisionProblem

    table = base.table
    better = PerformanceTable(
        {a: table.scale_of(a) for a in table.attribute_names},
        [
            alt.with_performance("price", price) if alt.name == "mid" else alt
            for alt in table.alternatives
        ],
    )
    problem = DecisionProblem(base.hierarchy, better, base.utilities, base.weights)
    baseline = evaluate(base).average_of("mid")
    changed = evaluate(problem).average_of("mid")
    if price <= 800.0:
        assert changed >= baseline - 1e-12
    else:
        assert changed <= baseline + 1e-12
