"""Tests for the persistent registry index (cross-run result caching)."""

import json
import os
import sqlite3

import pytest

from repro.core import workspace
from repro.core.index import (
    RECORDING_WINDOW_NS,
    CachedResult,
    RegistryIndex,
    default_index_path,
    eval_config_hash,
)
from repro.core.runtime import BatchOptions, ShardedRunner

from ..conftest import make_small_problem


def write_registry(tmp_path, n=6):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def mutate(path):
    """Semantically edit a workspace JSON (changes the content hash)."""
    data = json.loads(path.read_text())
    data["name"] = data["name"] + "-edited"
    path.write_text(json.dumps(data, indent=2, sort_keys=True))


@pytest.fixture
def index(tmp_path):
    with RegistryIndex(tmp_path / "index.sqlite") as idx:
        yield idx


class TestEvalConfigHash:
    def test_stable_for_equal_options(self):
        a = BatchOptions(simulations=100, method="intervals", seed=3)
        b = BatchOptions(simulations=100, method="intervals", seed=3)
        assert eval_config_hash(a) == eval_config_hash(b)

    def test_transport_knobs_do_not_matter(self):
        a = BatchOptions(use_disk_cache=True, mmap=True)
        b = BatchOptions(use_disk_cache=False, mmap=False)
        assert eval_config_hash(a) == eval_config_hash(b)

    def test_seed_and_method_ignored_without_simulations(self):
        a = BatchOptions(simulations=0, seed=1, method="random")
        b = BatchOptions(simulations=0, seed=2, method="intervals")
        assert eval_config_hash(a) == eval_config_hash(b)

    def test_result_shaping_fields_matter(self):
        base = BatchOptions()
        assert eval_config_hash(base) != eval_config_hash(
            BatchOptions(objectives=True)
        )
        assert eval_config_hash(
            BatchOptions(simulations=100, seed=1)
        ) != eval_config_hash(BatchOptions(simulations=100, seed=2))


class TestProbe:
    def test_new_file_is_fingerprinted(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        record = index.probe(path)
        assert record is not None
        assert record.path == os.path.abspath(str(path))
        assert record.content_hash == workspace.content_hash(
            workspace.load(path)
        )
        assert (record.n_alternatives, record.n_attributes) == (3, 3)

    def test_probe_is_read_only(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        index.probe(path)
        assert index.status()["n_workspaces"] == 0

    def test_stat_fast_path_trusts_stored_hashes(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        record = index.probe(path)
        index.record_run([record], {}, "cfg")
        again, status = index._probe(path)
        assert status == "fresh"
        assert again == record

    def test_touch_keeps_content_hash(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        record = index.probe(path)
        index.record_run([record], {}, "cfg")
        os.utime(path, ns=(record.mtime_ns + 10**9, record.mtime_ns + 10**9))
        again, status = index._probe(path)
        assert status == "touched"
        assert again.content_hash == record.content_hash
        assert again.mtime_ns != record.mtime_ns

    def test_edit_changes_content_hash(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        record = index.probe(path)
        index.record_run([record], {}, "cfg")
        mutate(path)
        again, status = index._probe(path)
        assert status == "changed"
        assert again.content_hash != record.content_hash

    def test_missing_or_corrupt_file_probes_none(self, tmp_path, index):
        assert index.probe(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert index.probe(bad) is None

    def test_fresh_npz_supplies_hash_without_parsing(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        workspace.load_compiled_fast(path)  # persists the .npz sibling
        record = index.probe(path)
        assert record.npz_source_sha == record.source_sha
        assert record.content_hash == workspace.content_hash(
            workspace.load(path)
        )

    def test_warm_artifact_persists_npz(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        npz = workspace.compiled_array_path(path)
        assert not npz.exists()
        record = index.probe(path, warm_artifact=True)
        assert npz.exists()
        assert record.npz_source_sha == record.source_sha


class TestResultCache:
    def test_round_trip_is_exact(self, index):
        rows = (
            CachedResult(
                sub_index=0,
                name="ws",
                n_alternatives=3,
                n_attributes=3,
                best_name="alt",
                best_minimum=0.12345678901234567,
                best_average=2.0 / 3.0,
                best_maximum=1.0 - 2.0**-52,
                ever_best=2,
                top5_fluctuation=1,
            ),
            CachedResult(
                sub_index=1,
                name="ws:cost",
                n_alternatives=3,
                n_attributes=1,
                best_name="other",
                best_minimum=0.0,
                best_average=0.5,
                best_maximum=1.0,
            ),
        )
        index.record_run([], {"hash": rows}, "cfg")
        assert index.lookup_results("hash", "cfg") == rows

    def test_lookup_misses(self, index):
        assert index.lookup_results("nope", "cfg") is None

    def test_config_hash_partitions_results(self, index):
        row = CachedResult(0, "ws", 3, 3, "a", 0.0, 0.5, 1.0)
        index.record_run([], {"hash": (row,)}, "cfg-a")
        assert index.lookup_results("hash", "cfg-b") is None

    def test_record_run_replaces_row_set(self, index):
        old = CachedResult(0, "ws", 3, 3, "a", 0.0, 0.5, 1.0)
        new = CachedResult(0, "ws", 3, 3, "b", 0.1, 0.6, 0.9)
        index.record_run([], {"hash": (old,)}, "cfg")
        index.record_run([], {"hash": (new,)}, "cfg")
        assert index.lookup_results("hash", "cfg") == (new,)

    def test_schema_version_guard(self, tmp_path):
        db = tmp_path / "index.sqlite"
        RegistryIndex(db).close()
        conn = sqlite3.connect(db)
        with conn:
            conn.execute(
                "UPDATE index_meta SET value = '999'"
                " WHERE key = 'schema_version'"
            )
        conn.close()
        with pytest.raises(ValueError, match="schema"):
            RegistryIndex(db)


class TestIndexedRuns:
    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        paths = write_registry(tmp_path, n=6)
        runner = ShardedRunner(
            workers=1, options=BatchOptions(simulations=100, seed=7)
        )
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = runner.run(paths, index=index)
            warm = runner.run(paths, index=index)
        assert cold.n_cached == 0
        assert warm.n_cached == 6
        assert warm.results == cold.results
        assert warm.skipped == cold.skipped

    def test_cached_results_match_uncached_run(self, tmp_path):
        paths = write_registry(tmp_path, n=4)
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner.run(paths, index=index)
            warm = runner.run(paths, index=index)
        plain = runner.run(paths)
        assert warm.results == plain.results

    def test_mutating_one_workspace_reevaluates_only_it(self, tmp_path):
        paths = write_registry(tmp_path, n=5)
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = runner.run(paths, index=index)
            mutate(paths[2])
            after = runner.run(paths, index=index)
        assert after.n_cached == 4
        assert after.results[2].name == "ws-02-edited"
        for i in (0, 1, 3, 4):
            assert after.results[i] == cold.results[i]

    def test_refresh_reevaluates_but_matches(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = runner.run(paths, index=index)
            refreshed = runner.run(paths, index=index, refresh=True)
            warm = runner.run(paths, index=index)
        assert refreshed.n_cached == 0
        assert refreshed.results == cold.results
        assert warm.n_cached == 3

    def test_objectives_rows_cache_as_a_complete_set(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        runner = ShardedRunner(workers=1, options=BatchOptions(objectives=True))
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = runner.run(paths, index=index)
            warm = runner.run(paths, index=index)
        assert warm.n_cached == 2
        assert warm.results == cold.results
        assert [(r.index, r.sub_index) for r in warm.results] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_corrupt_workspace_skipped_never_cached(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        registry = [paths[0], bad, paths[1]]
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = runner.run(registry, index=index)
            warm = runner.run(registry, index=index)
        assert cold.skipped == warm.skipped
        assert len(warm.skipped) == 1
        assert warm.n_cached == 2

    def test_duplicate_paths_share_one_cache_entry(self, tmp_path):
        paths = write_registry(tmp_path, n=1)
        registry = [paths[0]] * 3
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = runner.run(registry, index=index)
            warm = runner.run(registry, index=index)
            n_rows = index.status()["n_workspaces"]
        assert warm.n_cached == 3
        assert warm.results == cold.results
        assert n_rows == 1

    def test_mid_run_edit_is_not_recorded(self, tmp_path):
        """A workspace edited between probe and merge must not be cached.

        Workers re-read files at evaluation time, so recording the run
        would bind the *new* content's numbers to the *old* content
        hash.  Simulated by giving _persist_run a record whose stat
        fingerprint no longer matches the file.
        """
        from dataclasses import replace as dc_replace

        (path,) = write_registry(tmp_path, n=1)
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            record = index.probe(path)
            stale = dc_replace(record, mtime_ns=record.mtime_ns - 1)
            report = runner.run([path])  # fresh results, no index
            runner._persist_run(
                index,
                "cfg",
                {str(path): stale},
                [(0, str(path))],
                list(report.results),
            )
            assert index.lookup_results(record.content_hash, "cfg") is None
            assert index.status()["n_workspaces"] == 0

    def test_multiworker_run_matches_single_worker_cache(self, tmp_path):
        paths = write_registry(tmp_path, n=8)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            cold = ShardedRunner(workers=2).run(paths, index=index)
            warm = ShardedRunner(workers=1).run(paths, index=index)
        assert warm.n_cached == 8
        assert warm.results == cold.results


class TestStalenessRegression:
    """Edits that preserve the stat fingerprint must still be caught."""

    def _recorded(self, tmp_path, index):
        (path,) = write_registry(tmp_path, n=1)
        record = index.probe(path)
        index.record_run([record], {}, "cfg")
        return path, record

    def _rewrite_same_size(self, path):
        """A semantic edit that keeps the file's byte length."""
        text = path.read_text()
        assert "ws-00" in text
        path.write_text(text.replace("ws-00", "xs-00"))

    def test_mtime_preserving_rewrite_is_detected(self, tmp_path, index):
        """cp -p / git checkout shape: content replaced, mtime+size
        restored.  ctime still moves, so the probe must re-hash."""
        path, record = self._recorded(tmp_path, index)
        st_before = os.stat(path)
        self._rewrite_same_size(path)
        os.utime(path, ns=(st_before.st_atime_ns, st_before.st_mtime_ns))
        st_after = os.stat(path)
        assert st_after.st_mtime_ns == st_before.st_mtime_ns
        assert st_after.st_size == st_before.st_size
        fresh, status = index.probe_with_status(path)
        assert status == "changed"
        assert fresh.content_hash != record.content_hash

    def test_identical_stat_triple_caught_within_window(self, tmp_path, index):
        """Even a full stat-triple collision (two writes inside one
        filesystem timestamp tick) is caught while the row's recording
        window is open: the probe byte-verifies the source sha."""
        path, record = self._recorded(tmp_path, index)
        self._rewrite_same_size(path)
        st = os.stat(path)
        # Forge the collision: make the stored row's fingerprint match
        # the edited file exactly (userspace cannot do this to ctime,
        # so simulate it in the database).
        index._conn.execute(
            "UPDATE workspaces SET mtime_ns=?, size=?, ctime_ns=? "
            "WHERE path=?",
            (st.st_mtime_ns, st.st_size, st.st_ctime_ns, record.path),
        )
        index._conn.commit()
        fresh, status = index.probe_with_status(path)
        assert status == "changed"
        assert fresh.content_hash != record.content_hash

    def test_quiet_row_leaves_the_window(self, tmp_path, index, monkeypatch):
        """Once the recording time is far past the file's mtime, the
        pure stat fast path answers without reading the file."""
        path, record = self._recorded(tmp_path, index)
        index._conn.execute(
            "UPDATE workspaces SET recorded_ns = recorded_ns + ?",
            (10 * RECORDING_WINDOW_NS,),
        )
        index._conn.commit()
        reads = []
        real = workspace._file_sha256
        monkeypatch.setattr(
            workspace,
            "_file_sha256",
            lambda p: (reads.append(p), real(p))[1],
        )
        fresh, status = index.probe_with_status(path)
        assert status == "fresh"
        assert fresh == record
        assert reads == []
        assert not index.needs_restamp(index.lookup_workspace(path))


class TestMaintenance:
    def test_build_counts(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            first = index.build(paths)
            assert first == {
                "fresh": 0, "touched": 0, "changed": 0, "new": 3, "error": 0,
            }
            mutate(paths[0])
            second = index.build(paths)
            assert second["fresh"] == 2
            assert second["changed"] == 1

    def test_status_freshness_sweep(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            index.build(paths)
            mutate(paths[0])
            paths[1].unlink()
            info = index.status()
        assert info["n_workspaces"] == 3
        assert (info["fresh"], info["stale"], info["missing"]) == (1, 1, 1)

    def test_vacuum_drops_dead_rows(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner.run(paths, index=index)
            mutate(paths[0])  # orphans the old content's result row
            runner.run(paths, index=index)
            paths[1].unlink()
            removed = index.vacuum()
            info = index.status()
        assert removed["workspaces_removed"] == 1
        # the stale ws-00 content row and the deleted ws-01 row are gone
        assert removed["result_rows_removed"] == 2
        assert info["n_workspaces"] == 2
        assert info["n_result_rows"] == 2

    def test_vacuum_sweeps_stray_temp_artifacts(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        runner = ShardedRunner(workers=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner.run(paths, index=index)
            # a crashed writer's leftovers, in the registry directory
            stray = tmp_path / ".ws-00.npz.tmp.1234.ab"
            stray.write_bytes(b"partial")
            removed = index.vacuum()
        assert removed["temp_artifacts_removed"] == 1
        assert not stray.exists()

    def test_default_index_path_is_common_directory(self, tmp_path):
        a = tmp_path / "a" / "x.json"
        b = tmp_path / "b" / "y.json"
        assert default_index_path([a, b]) == tmp_path / ".repro-index.sqlite"
        assert (
            default_index_path([a])
            == tmp_path / "a" / ".repro-index.sqlite"
        )
        with pytest.raises(ValueError):
            default_index_path([])


class TestIndexCLI:
    def test_batch_warm_run_is_byte_identical(self, capsys, tmp_path):
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=4)]
        argv = ["batch", "--workers", "1", *paths]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert (tmp_path / ".repro-index.sqlite").exists()

    def test_batch_no_cache_leaves_no_index(self, capsys, tmp_path):
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=2)]
        assert main(["batch", "--workers", "1", "--no-cache", *paths]) == 0
        capsys.readouterr()
        assert not (tmp_path / ".repro-index.sqlite").exists()

    def test_batch_refresh_implies_registry_mode(self, capsys, tmp_path):
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=2)]
        assert main(["batch", "--refresh", *paths]) == 0
        out = capsys.readouterr().out
        assert "evaluated 2 problem(s)" in out
        assert (tmp_path / ".repro-index.sqlite").exists()

    def test_batch_explicit_index_location(self, capsys, tmp_path):
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=2)]
        db = tmp_path / "elsewhere.sqlite"
        assert main(["batch", "--index", str(db), *paths]) == 0
        capsys.readouterr()
        assert db.exists()
        assert not (tmp_path / ".repro-index.sqlite").exists()

    def test_index_build_status_vacuum(self, capsys, tmp_path):
        from repro.cli import main

        write_registry(tmp_path, n=3)
        assert main(["index", "build", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "indexed 3 workspace(s)" in out
        assert main(["index", "status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "workspaces : 3 (3 fresh" in out
        assert main(["index", "vacuum", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "vacuumed" in out

    def test_index_requires_directory(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["index", "build", str(tmp_path / "nope")])

    def test_status_on_unindexed_registry_creates_nothing(self, tmp_path):
        from repro.cli import main

        write_registry(tmp_path, n=1)
        for action in ("status", "vacuum"):
            with pytest.raises(SystemExit, match="no registry index"):
                main(["index", action, str(tmp_path)])
        assert not (tmp_path / ".repro-index.sqlite").exists()

    def test_registry_flags_require_workspaces(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["batch", "--refresh"])

    def test_no_cache_conflicts_with_refresh_and_index(self, tmp_path):
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=1)]
        with pytest.raises(SystemExit, match="conflicts"):
            main(["batch", "--no-cache", "--refresh", *paths])
        with pytest.raises(SystemExit, match="conflicts"):
            main(["batch", "--no-cache", "--index", "x.sqlite", *paths])

    def test_unwritable_index_falls_back_to_uncached(
        self, capsys, tmp_path
    ):
        """Evaluation must survive an uncreatable index database."""
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=2)]
        db = tmp_path / "no" / "such" / "dir" / "index.sqlite"
        assert main(["batch", "--workers", "1", "--index", str(db), *paths]) == 0
        captured = capsys.readouterr()
        assert "evaluated 2 problem(s)" in captured.out
        assert "registry index unavailable" in captured.err
        # stdout matches a plain uncached run byte for byte
        assert main(["batch", "--workers", "1", "--no-cache", *paths]) == 0
        assert capsys.readouterr().out == captured.out

    def test_index_build_ignores_custom_json_database(self, capsys, tmp_path):
        """--index pointing at a .json inside the registry is not scanned."""
        from repro.cli import main

        write_registry(tmp_path, n=2)
        db = tmp_path / "custom-index.json"
        assert main(["index", "build", str(tmp_path), "--index", str(db)]) == 0
        out = capsys.readouterr().out
        assert "indexed 2 workspace(s)" in out
        assert "unreadable: 0" in out


class TestConcurrency:
    """One shared RegistryIndex across threads: WAL readers + one writer.

    The query service (repro.service) shares a single index instance
    across request threads while read-through misses commit through the
    single-writer path — these tests pin the contract that makes that
    sound: per-thread connections, readers seeing complete row sets or
    nothing, and close() releasing every thread's connection.
    """

    def test_memory_databases_are_rejected(self):
        with pytest.raises(ValueError, match=":memory:"):
            RegistryIndex(":memory:")

    def test_multi_reader_while_writer_commits(self, tmp_path):
        import threading

        paths = write_registry(tmp_path, n=4)
        config_hash = eval_config_hash(BatchOptions())
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner = ShardedRunner(workers=1)
            runner.run(paths, index=index)  # seed every content hash
            hashes = [index.probe(p).content_hash for p in paths]

            stop = threading.Event()
            errors = []

            def reader(content_hash):
                try:
                    while not stop.is_set():
                        rows = index.lookup_results(content_hash, config_hash)
                        # complete row set or nothing, never a torn read
                        assert rows is None or (
                            len(rows) == 1 and rows[0].sub_index == 0
                        )
                        record = index.probe(paths[0])
                        assert record is not None
                        assert index.status()["n_workspaces"] == 4
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(h,)) for h in hashes
            ]
            for thread in threads:
                thread.start()
            try:
                # the writer: repeated full refresh commits under
                # BEGIN IMMEDIATE while the readers spin
                for _ in range(5):
                    runner.run(paths, index=index, refresh=True)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not errors
            assert index.status()["n_result_rows"] == 4

    def test_each_thread_gets_its_own_connection(self, tmp_path):
        import threading

        write_registry(tmp_path, n=1)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            main_conn = index._conn
            seen = []

            def worker():
                seen.append(index._conn)
                assert index.status()["n_workspaces"] == 0

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=10)
            assert len(seen) == 1
            assert seen[0] is not main_conn

    def test_close_shuts_every_threads_connection(self, tmp_path):
        import threading

        index = RegistryIndex(tmp_path / "index.sqlite")

        def worker():
            index.status()  # opens this thread's connection

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10)
        assert len(index._connections) == 2
        index.close()
        assert index._connections == {}
        with pytest.raises((sqlite3.ProgrammingError, ValueError)):
            index.status()

    def test_dead_threads_connections_are_reaped(self, tmp_path):
        import threading

        with RegistryIndex(tmp_path / "index.sqlite") as index:
            for _ in range(5):
                thread = threading.Thread(target=index.status)
                thread.start()
                thread.join(timeout=10)
            # each new thread's connect reaps the previous dead owner,
            # so churners cannot accumulate file descriptors
            with index._connections_lock:
                alive = [
                    owner.is_alive()
                    for owner, _ in index._connections.values()
                ]
            assert len(alive) <= 2  # main + at most the last worker
            assert alive.count(True) == 1


class TestStatusResultBytes:
    def test_empty_index_reports_zero_cached_bytes(self, index):
        info = index.status()
        assert info["n_result_rows"] == 0
        assert info["result_bytes"] == 0

    def test_result_bytes_track_cached_payload(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            ShardedRunner(workers=1).run(paths, index=index)
            info = index.status()
        assert info["n_result_rows"] == 3
        # per row: two 64-hex hashes + the text names + 8 numeric columns
        assert info["result_bytes"] >= 3 * (64 + 64 + 8 * 8)

    def test_cli_status_reports_rows_and_bytes(self, capsys, tmp_path):
        from repro.cli import main

        paths = [str(p) for p in write_registry(tmp_path, n=2)]
        assert main(["batch", "--workers", "1", *paths]) == 0
        capsys.readouterr()
        assert main(["index", "status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results    : 2 row(s)" in out
        assert "cached byte(s)" in out
