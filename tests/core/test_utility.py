"""Tests for component-utility classes (Figs. 3-4 shapes)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.scales import MISSING, ContinuousScale, linguistic_0_3
from repro.core.utility import (
    MISSING_UTILITY,
    DiscreteUtility,
    PiecewiseLinearUtility,
    banded_discrete_utility,
    linear_utility,
)


class TestDiscreteUtility:
    def test_fig4_banded_shape(self):
        """Fig. 4: [0,.2], [.2,.4], [.4,.6], then exactly 1.0."""
        fn = banded_discrete_utility(linguistic_0_3("purpose"))
        assert fn.utility(0).almost_equal(Interval(0.0, 0.2))
        assert fn.utility(1).almost_equal(Interval(0.2, 0.4))
        assert fn.utility(2).almost_equal(Interval(0.4, 0.6), tol=1e-9)
        assert fn.utility(3) == Interval.point(1.0)

    def test_imprecise_best(self):
        fn = banded_discrete_utility(linguistic_0_3("x"), best_is_precise=False)
        assert fn.utility(3) == Interval(0.8, 1.0)

    def test_missing_gets_unit_interval(self):
        fn = banded_discrete_utility(linguistic_0_3("x"))
        assert fn.utility(MISSING) == MISSING_UTILITY == Interval(0.0, 1.0)

    def test_average_is_midpoint(self):
        fn = banded_discrete_utility(linguistic_0_3("x"))
        assert fn.average_utility(2) == pytest.approx(0.5)
        assert fn.average_utility(MISSING) == pytest.approx(0.5)

    def test_rejects_wrong_level_count(self):
        scale = linguistic_0_3("x")
        with pytest.raises(ValueError):
            DiscreteUtility(scale, (Interval(0, 1),))

    def test_rejects_nonmonotone_envelopes(self):
        scale = linguistic_0_3("x")
        with pytest.raises(ValueError):
            DiscreteUtility(
                scale,
                (
                    Interval(0.0, 0.5),
                    Interval(0.4, 0.4),
                    Interval(0.2, 0.6),  # lower envelope decreases
                    Interval(0.9, 1.0),
                ),
            )

    def test_rejects_out_of_unit(self):
        scale = linguistic_0_3("x")
        with pytest.raises(ValueError):
            DiscreteUtility(
                scale,
                (Interval(0, 0.2), Interval(0.2, 0.4), Interval(0.4, 0.6),
                 Interval(0.9, 1.1)),
            )

    def test_rejects_invalid_performance(self):
        fn = banded_discrete_utility(linguistic_0_3("x"))
        with pytest.raises(ValueError):
            fn.utility(9)

    def test_band_width_bounds(self):
        with pytest.raises(ValueError):
            banded_discrete_utility(linguistic_0_3("x"), band_width=0.5)
        with pytest.raises(ValueError):
            banded_discrete_utility(linguistic_0_3("x"), band_width=0.0)


class TestPiecewiseLinearUtility:
    def test_fig3_linear(self):
        scale = ContinuousScale("ValueT", 0.0, 3.0)
        fn = linear_utility(scale)
        assert fn.utility(0.0) == Interval.point(0.0)
        assert fn.utility(3.0) == Interval.point(1.0)
        assert fn.utility(0.93).midpoint == pytest.approx(0.31)

    def test_descending_scale(self):
        scale = ContinuousScale("cost", 0.0, 100.0, ascending=False)
        fn = linear_utility(scale)
        assert fn.utility(0.0) == Interval.point(1.0)
        assert fn.utility(100.0) == Interval.point(0.0)

    def test_imprecise_knots_interpolate(self):
        scale = ContinuousScale("x", 0.0, 1.0)
        fn = PiecewiseLinearUtility(
            scale,
            ((0.0, Interval(0.0, 0.1)), (1.0, Interval(0.8, 1.0))),
        )
        mid = fn.utility(0.5)
        assert mid.lower == pytest.approx(0.4)
        assert mid.upper == pytest.approx(0.55)

    def test_exact_knot_hit(self):
        scale = ContinuousScale("x", 0.0, 2.0)
        fn = PiecewiseLinearUtility(
            scale,
            ((0.0, Interval.point(0.0)), (1.0, Interval(0.3, 0.5)),
             (2.0, Interval.point(1.0))),
        )
        assert fn.utility(1.0) == Interval(0.3, 0.5)

    def test_missing(self):
        fn = linear_utility(ContinuousScale("x", 0.0, 1.0))
        assert fn.utility(MISSING) == Interval(0.0, 1.0)

    def test_out_of_range(self):
        fn = linear_utility(ContinuousScale("x", 0.0, 1.0))
        with pytest.raises(ValueError):
            fn.utility(1.5)

    def test_knots_must_span_scale(self):
        scale = ContinuousScale("x", 0.0, 2.0)
        with pytest.raises(ValueError):
            PiecewiseLinearUtility(
                scale, ((0.0, Interval.point(0)), (1.0, Interval.point(1)))
            )

    def test_knots_must_increase(self):
        scale = ContinuousScale("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            PiecewiseLinearUtility(
                scale,
                ((1.0, Interval.point(1)), (0.0, Interval.point(0))),
            )


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

@given(st.floats(min_value=0.0, max_value=3.0))
def test_linear_utility_stays_in_unit(x):
    fn = linear_utility(ContinuousScale("v", 0.0, 3.0))
    iv = fn.utility(x)
    assert 0.0 <= iv.lower <= iv.upper <= 1.0


@given(
    st.floats(min_value=0.0, max_value=3.0),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_linear_utility_is_monotone(a, b):
    fn = linear_utility(ContinuousScale("v", 0.0, 3.0))
    lo, hi = sorted((a, b))
    assert fn.utility(lo).midpoint <= fn.utility(hi).midpoint + 1e-12


@given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
def test_banded_utility_is_monotone_in_levels(a, b):
    fn = banded_discrete_utility(linguistic_0_3("x"))
    lo, hi = sorted((a, b))
    assert fn.utility(lo).lower <= fn.utility(hi).lower + 1e-12
    assert fn.utility(lo).upper <= fn.utility(hi).upper + 1e-12
