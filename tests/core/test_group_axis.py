"""The engine's members axis: bit-identity with the scalar group loop."""

import json

import numpy as np
import pytest

from repro.core.engine import (
    BatchEvaluator,
    GroupResult,
    StackedEvaluator,
    StackedProblem,
    StackedRoster,
    compile_problem,
    compile_roster,
)
from repro.core.group import GroupMember, borda_ranking
from repro.core.interval import Interval
from repro.core.model import evaluate
from repro.core.weights import WeightSystem

from ..conftest import make_small_problem


def make_members(hierarchy, n=4, spread=0.15):
    """A deterministic roster with genuine (non-disjoint) disagreement."""
    nodes = [
        node.name
        for node in hierarchy.nodes()
        if node.name != hierarchy.root.name
    ]
    members = []
    for k in range(n):
        raw = {}
        for i, name in enumerate(nodes):
            factor = 1.0 + spread * ((k + i) % 3)
            raw[name] = Interval(0.8 * factor, 1.2 * factor)
        members.append(
            GroupMember(
                f"dm-{k}", WeightSystem.from_raw_intervals(hierarchy, raw)
            )
        )
    return members


@pytest.fixture()
def problem():
    return make_small_problem()


@pytest.fixture()
def members(problem):
    return make_members(problem.hierarchy)


@pytest.fixture()
def roster(problem, members):
    return compile_roster(members, problem.hierarchy)


class TestCompiledRoster:
    def test_shapes(self, roster, members, problem):
        assert roster.n_members == len(members)
        assert roster.n_attributes == len(problem.attribute_names)
        assert roster.w_avg.shape == (len(members), 3)
        assert roster.member_names == tuple(m.name for m in members)

    def test_weight_rows_match_per_member_compilation(
        self, problem, members, roster
    ):
        for k, member in enumerate(members):
            compiled = compile_problem(problem.with_weights(member.weights))
            assert np.array_equal(roster.w_low[k], compiled.w_low)
            assert np.array_equal(roster.w_avg[k], compiled.w_avg)
            assert np.array_equal(roster.w_up[k], compiled.w_up)

    def test_empty_roster_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            compile_roster([])

    def test_mismatched_member_hierarchies_rejected(self, members):
        other = make_small_problem(name="other")
        from repro.core.hierarchy import Hierarchy, ObjectiveNode

        h2 = Hierarchy(
            ObjectiveNode(
                "different",
                children=[
                    ObjectiveNode("only", attribute="price"),
                    ObjectiveNode("two", attribute="battery"),
                ],
            )
        )
        stranger = GroupMember(
            "stranger",
            WeightSystem(
                h2,
                {"only": Interval(0.4, 0.6), "two": Interval(0.4, 0.6)},
            ),
        )
        with pytest.raises(ValueError, match="different hierarchy"):
            compile_roster(members + [stranger])
        with pytest.raises(ValueError, match="do not match the"):
            compile_roster([stranger], other.hierarchy)

    def test_aggregated_unknown_method(self, roster):
        with pytest.raises(ValueError, match="intersection"):
            roster.aggregated("average")


class TestMemberAxisBitIdentity:
    def test_member_utilities_equal_scalar_matvec(
        self, problem, members, roster
    ):
        evaluator = BatchEvaluator(compile_problem(problem))
        tensor = evaluator.member_average_utilities(roster)
        for k, member in enumerate(members):
            scalar = BatchEvaluator(
                compile_problem(problem.with_weights(member.weights))
            ).average_utilities()
            assert np.array_equal(tensor[k], scalar)

    def test_member_rankings_equal_scalar_evaluate(
        self, problem, members, roster
    ):
        evaluator = BatchEvaluator(compile_problem(problem))
        rankings = evaluator.member_rankings(roster)
        for k, member in enumerate(members):
            expected = evaluate(
                problem.with_weights(member.weights)
            ).names_by_rank
            assert rankings[k] == expected

    def test_borda_equals_scalar_borda(self, problem, members, roster):
        evaluator = BatchEvaluator(compile_problem(problem))
        scalar_rankings = [
            evaluate(problem.with_weights(m.weights)).names_by_rank
            for m in members
        ]
        assert evaluator.borda_order(roster) == borda_ranking(scalar_rankings)

    @pytest.mark.parametrize("method", ["intersection", "hull"])
    def test_group_evaluation_equals_scalar_aggregate(
        self, problem, members, roster, method
    ):
        from repro.core.group import aggregate_weights

        evaluator = BatchEvaluator(compile_problem(problem))
        expected = evaluate(
            problem.with_weights(aggregate_weights(members, method))
        )
        got = evaluator.group_evaluation(roster, method)
        assert got.names_by_rank == expected.names_by_rank
        for row, exp in zip(got, expected):
            assert (row.minimum, row.average, row.maximum) == (
                exp.minimum,
                exp.average,
                exp.maximum,
            )

    def test_roster_attribute_count_mismatch_rejected(self, roster):
        other = make_small_problem(name="other")
        evaluator = BatchEvaluator(compile_problem(other.restricted_to("quality")))
        with pytest.raises(ValueError, match="attributes"):
            evaluator.member_average_utilities(roster)


class TestGroupResult:
    def test_payload_round_trip_exact(self, problem, roster):
        result = BatchEvaluator(compile_problem(problem)).group_result(roster)
        payload = json.loads(json.dumps(result.to_payload()))
        assert GroupResult.from_payload(payload) == result

    def test_best_prefers_consensus(self, problem, roster):
        result = BatchEvaluator(compile_problem(problem)).group_result(roster)
        assert result.consensus is not None
        assert result.best == result.consensus[0]
        assert result.disjoint == ()

    def test_max_disagreement_bounds(self, problem, roster):
        result = BatchEvaluator(compile_problem(problem)).group_result(roster)
        assert 0.0 <= result.max_disagreement <= 1.0
        assert result.n_members == roster.n_members


class TestStackedGroup:
    def test_stacked_results_equal_per_problem(self):
        problems = [
            make_small_problem(name="p0"),
            make_small_problem(missing_cell=True, name="p1"),
            make_small_problem(name="p2"),
        ]
        compiled = [compile_problem(p) for p in problems]
        rosters = [
            compile_roster(make_members(p.hierarchy), p.hierarchy)
            for p in problems
        ]
        stacked = StackedEvaluator(StackedProblem(compiled))
        results = stacked.group_results(StackedRoster(rosters))
        for k, (c, r) in enumerate(zip(compiled, rosters)):
            assert results[k] == BatchEvaluator(c).group_result(r)

    def test_stacked_roster_validation(self, problem, members):
        roster = compile_roster(members, problem.hierarchy)
        smaller = compile_roster(members[:2], problem.hierarchy)
        with pytest.raises(ValueError, match="member names"):
            StackedRoster([roster, smaller])
        with pytest.raises(ValueError, match="at least one"):
            StackedRoster([])

    def test_stacked_size_mismatch_rejected(self, problem, members):
        roster = compile_roster(members, problem.hierarchy)
        stacked = StackedEvaluator(
            StackedProblem([compile_problem(problem)] * 2)
        )
        with pytest.raises(ValueError, match="problems"):
            stacked.group_results(StackedRoster([roster]))


class TestReweighted:
    def test_reweighted_shares_arrays_swaps_weights(self, problem):
        compiled = compile_problem(problem)
        w = np.full(compiled.n_attributes, 1.0 / compiled.n_attributes)
        view = compiled.reweighted(w, w, w)
        assert view.u_avg is compiled.u_avg
        assert np.array_equal(view.w_avg, w)
        assert np.array_equal(compiled.w_avg, compile_problem(problem).w_avg)

    def test_reweighted_shape_validation(self, problem):
        compiled = compile_problem(problem)
        bad = np.ones(compiled.n_attributes + 1)
        with pytest.raises(ValueError, match="shape"):
            compiled.reweighted(bad, bad, bad)
