"""Tests for the registry generator: determinism, validity, round-trips."""

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import genreg, workspace
from repro.core.engine import BatchEvaluator, compile_problem
from repro.core.genreg import RegistrySpec, preset
from repro.core.model import evaluate
from repro.core.scales import MISSING

from tests.strategies import registry_specs, spec_cases


def canonical_json(problem):
    return json.dumps(workspace.to_dict(problem), indent=2, sort_keys=True)


class TestDeterminism:
    def test_same_spec_and_seed_give_byte_identical_json(self):
        spec = preset("default", seed=123, n_workspaces=20)
        first = [canonical_json(p) for p in genreg.iter_problems(spec)]
        second = [canonical_json(p) for p in genreg.iter_problems(spec)]
        assert first == second

    def test_registry_digest_is_stable_across_runs(self):
        spec = preset("small", seed=9)
        assert genreg.registry_digest(spec) == genreg.registry_digest(spec)

    def test_distinct_seeds_give_distinct_content_hashes(self):
        digests = {
            genreg.registry_digest(preset("small", seed=s, n_workspaces=5))
            for s in range(8)
        }
        assert len(digests) == 8

    def test_case_hashes_differ_within_one_registry(self):
        spec = preset("default", seed=4, n_workspaces=10)
        hashes = {
            workspace.content_hash(p) for p in genreg.iter_problems(spec)
        }
        assert len(hashes) == 10

    def test_written_files_match_in_memory_documents(self, tmp_path):
        spec = preset("small", seed=11, n_workspaces=6)
        paths = genreg.write_registry(spec, tmp_path)
        assert [p.name for p in paths] == [
            f"small-{i:05d}.json" for i in range(6)
        ]
        for i, path in enumerate(paths):
            on_disk = workspace.load(path)
            assert workspace.content_hash(on_disk) == workspace.content_hash(
                genreg.generate_problem(spec, i)
            )

    def test_pinned_digest_guards_cross_version_stability(self):
        # Byte-stability anchor: any change to the drawing order, float
        # rounding or serialisation shows up here first.  Regenerate
        # with `registry_digest(preset("small", seed=2012))` only for a
        # deliberate, documented format change.
        digest = genreg.registry_digest(preset("small", seed=2012))
        assert digest == (
            "0ef60f758d7d66ea4eb58cbf2e2cac9724200d5230d640ed85f1013fe9f7ea2d"
        )


class TestSpecRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = preset("fuzz", seed=3)
        assert RegistrySpec.from_dict(spec.to_dict()) == spec

    def test_save_load_round_trip(self, tmp_path):
        spec = preset("degenerate", seed=99)
        path = genreg.save_spec(spec, tmp_path / "spec.json")
        assert genreg.load_spec(path) == spec

    def test_unknown_fields_rejected(self):
        payload = preset("small").to_dict()
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown spec fields"):
            RegistrySpec.from_dict(payload)

    def test_wrong_format_rejected(self):
        payload = preset("small").to_dict()
        payload["format"] = "repro-genspec/999"
        with pytest.raises(ValueError, match="unsupported spec format"):
            RegistrySpec.from_dict(payload)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError, match="alternatives"):
            RegistrySpec(alternatives=(3, 2))
        with pytest.raises(ValueError, match="levels"):
            RegistrySpec(levels=(1, 4))
        with pytest.raises(ValueError, match="weight_style"):
            RegistrySpec(weight_style="nope")

    def test_every_preset_is_valid_and_generates(self):
        for name in genreg.PRESETS:
            problem = genreg.generate_problem(preset(name), 0)
            assert problem.name.startswith(genreg.PRESETS[name].name)


@settings(max_examples=30, deadline=None)
@given(spec_cases(max_workspaces=4))
def test_generated_problems_are_valid_and_deterministic(case):
    """Any spec in the sweep space yields a valid, replayable problem."""
    spec, index = case
    problem = genreg.generate_problem(spec, index)
    again = genreg.generate_problem(spec, index)
    assert canonical_json(problem) == canonical_json(again)
    # Compiles and evaluates through both scalar and tensor paths.
    evaluation = evaluate(problem)
    rows = list(evaluation)
    assert len(rows) == len(problem.table.alternatives)
    for row in rows:
        assert row.minimum <= row.average + 1e-9
        assert row.average <= row.maximum + 1e-9
    ev = BatchEvaluator(compile_problem(problem))
    assert np.all(ev.minimum_utilities() <= ev.maximum_utilities() + 1e-12)


@settings(max_examples=20, deadline=None)
@given(registry_specs(max_workspaces=3))
def test_workspace_json_round_trip_is_exact(spec):
    problem = genreg.generate_problem(spec, 0)
    restored = workspace.from_dict(
        json.loads(canonical_json(problem))
    )
    assert workspace.content_hash(restored) == workspace.content_hash(problem)


def test_degenerate_preset_reaches_degenerate_shapes():
    spec = preset("degenerate", seed=0, n_workspaces=40)
    problems = list(genreg.iter_problems(spec))
    assert any(len(p.table.alternatives) == 1 for p in problems)
    assert any(
        all(
            alt.performance(a) is MISSING
            for a in p.table.attribute_names
        )
        for p in problems
        for alt in p.table.alternatives
    )


def test_missing_rate_regime_produces_missing_cells():
    spec = preset("missing", seed=1, n_workspaces=10)
    cells = missing = 0
    for p in genreg.iter_problems(spec):
        for alt in p.table.alternatives:
            for a in p.table.attribute_names:
                cells += 1
                missing += alt.performance(a) is MISSING
    assert 0 < missing < cells


def test_stress_preset_scales_to_10k_workspaces():
    spec = preset("stress-10k")
    assert spec.n_workspaces >= 10_000
    # Sampling the far end of the sweep must stay deterministic.
    a = canonical_json(genreg.generate_problem(spec, 9_999))
    b = canonical_json(genreg.generate_problem(spec, 9_999))
    assert a == b
