"""Tests for the fallback simplex LP solver, cross-checked with scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.core.simplex import linprog_simplex


class TestBasics:
    def test_simple_minimisation(self):
        # min x + y  s.t. x + y >= 1 (as -x - y <= -1), 0 <= x,y <= 1
        res = linprog_simplex(
            [1.0, 1.0],
            a_ub=[[-1.0, -1.0]],
            b_ub=[-1.0],
            bounds=[(0.0, 1.0), (0.0, 1.0)],
        )
        assert res.success
        assert res.fun == pytest.approx(1.0)

    def test_equality_constraint(self):
        # min -x  s.t. x + y == 1, bounds [0, 0.6]
        res = linprog_simplex(
            [-1.0, 0.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[1.0],
            bounds=[(0.0, 0.6), (0.0, 0.6)],
        )
        assert res.success
        assert res.fun == pytest.approx(-0.6)
        assert res.x[0] == pytest.approx(0.6)

    def test_infeasible(self):
        res = linprog_simplex(
            [1.0],
            a_eq=[[1.0]],
            b_eq=[2.0],
            bounds=[(0.0, 1.0)],
        )
        assert not res.success
        assert res.status == 2

    def test_unbounded(self):
        res = linprog_simplex([-1.0], bounds=[(0.0, None)])
        assert not res.success
        assert res.status == 3

    def test_shifted_lower_bounds(self):
        # min x  with x in [2, 5]
        res = linprog_simplex([1.0], bounds=[(2.0, 5.0)])
        assert res.success
        assert res.fun == pytest.approx(2.0)

    def test_requires_finite_lower_bound(self):
        with pytest.raises(ValueError):
            linprog_simplex([1.0], bounds=[(None, 1.0)])


@st.composite
def weight_lps(draw):
    """Random dominance-shaped LPs: min c.w over a box meeting the simplex.

    The spread stays well away from zero: a box whose width is at
    floating-point noise level makes HiGHS declare infeasibility inside
    its own tolerance while the exact answer exists — not a behaviour
    worth pinning either solver to.
    """
    n = draw(st.integers(min_value=2, max_value=7))
    c = [draw(st.floats(-1, 1, allow_nan=False)) for _ in range(n)]
    mids = [draw(st.floats(0.05, 1.0)) for _ in range(n)]
    total = sum(mids)
    mids = [m / total for m in mids]
    spread = draw(st.floats(0.05, 0.8))
    bounds = [(m * (1 - spread), min(1.0, m * (1 + spread))) for m in mids]
    return np.array(c), bounds


@settings(max_examples=60, deadline=None)
@given(weight_lps())
def test_matches_scipy_on_weight_polytopes(lp):
    c, bounds = lp
    n = len(c)
    a_eq = np.ones((1, n))
    b_eq = np.array([1.0])
    ours = linprog_simplex(c, a_eq=a_eq, b_eq=b_eq, bounds=bounds)
    theirs = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    assert ours.success == theirs.success
    if ours.success:
        assert ours.fun == pytest.approx(theirs.fun, abs=1e-7)
        assert np.asarray(ours.x).sum() == pytest.approx(1.0, abs=1e-7)


@settings(max_examples=40, deadline=None)
@given(weight_lps(), st.integers(min_value=1, max_value=4))
def test_matches_scipy_with_inequalities(lp, n_rows):
    c, bounds = lp
    n = len(c)
    rng = np.random.default_rng(n_rows * 97 + n)
    a_ub = rng.uniform(-1, 1, size=(n_rows, n))
    b_ub = rng.uniform(0.2, 1.5, size=n_rows)
    a_eq = np.ones((1, n))
    b_eq = np.array([1.0])
    ours = linprog_simplex(c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, bounds=bounds)
    theirs = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    assert ours.success == theirs.success
    if ours.success:
        assert ours.fun == pytest.approx(theirs.fun, abs=1e-6)
