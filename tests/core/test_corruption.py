"""Corruption fixtures: damaged artifacts never damage results.

Each test physically corrupts one persistence layer — the compiled
``.npz`` artifact, the sqlite registry index, the workspace JSON
itself — and asserts the recovery contract: the runtime falls back,
rebuilds, and the final evaluated results are bit-identical to a run
that never saw the damage.
"""

import json

import pytest

from repro.core import workspace
from repro.core.faults import corrupt_sqlite
from repro.core.index import RegistryIndex
from repro.core.runtime import BatchOptions, ShardedRunner

from ..conftest import make_small_problem


@pytest.fixture
def registry(tmp_path):
    paths = []
    for i in range(3):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def run_batch(paths, index=None):
    return ShardedRunner(workers=1, options=BatchOptions()).run(
        paths, index=index
    )


class TestCorruptNpzArtifacts:
    def warm_artifact(self, path):
        workspace.load_compiled_fast(path)
        npz = workspace.compiled_array_path(path)
        assert npz.exists()
        return npz

    def test_truncated_npz_recompiles_identically(self, registry):
        clean = run_batch(registry)
        npz = self.warm_artifact(registry[0])
        blob = npz.read_bytes()
        npz.write_bytes(blob[: len(blob) // 2])

        # the damaged artifact is rejected outright ...
        assert workspace.load_compiled_arrays(npz) is None
        # ... the loader recompiles from JSON and rewrites it ...
        compiled = workspace.load_compiled_fast(registry[0])
        assert compiled.u_avg.shape == (
            len(compiled.alternative_names),
            len(compiled.attribute_names),
        )
        assert workspace.load_compiled_arrays(npz) is not None
        # ... and a batch over the registry is bit-identical.
        assert run_batch(registry).results == clean.results

    def test_garbage_npz_bytes_recompile_identically(self, registry):
        clean = run_batch(registry)
        npz = self.warm_artifact(registry[1])
        npz.write_bytes(b"this is not a zip archive at all")
        assert workspace.load_compiled_arrays(npz) is None
        assert run_batch(registry).results == clean.results
        assert workspace.load_compiled_arrays(npz) is not None

    def test_tampered_array_data_fails_checksum(self, registry):
        # Rewrite the artifact with one utility silently shifted but the
        # stored payload_sha left stale — exactly the bit-rot case the
        # zero-copy mmap path (no zip CRC) cannot see on its own.  The
        # payload checksum must turn it into an ordinary cache miss.
        import numpy as np

        clean = run_batch(registry)
        npz = self.warm_artifact(registry[2])
        with np.load(npz, allow_pickle=False) as archive:
            payload = {name: archive[name].copy() for name in archive.files}
        payload["u_avg"][0, 0] = 1.0 - payload["u_avg"][0, 0]
        with open(npz, "wb") as fh:
            np.savez(fh, **payload)
        assert workspace.load_compiled_arrays(npz) is None
        assert run_batch(registry).results == clean.results


class TestCorruptSqliteIndex:
    def test_zeroed_header_rebuilds_on_open(self, registry, tmp_path):
        db_path = tmp_path / "idx.sqlite"
        with RegistryIndex(db_path) as index:
            clean = run_batch(registry, index=index)
        corrupt_sqlite(db_path)

        with RegistryIndex(db_path) as index:
            status = index.status()
            assert status["last_rebuild_ns"] is not None
            assert run_batch(registry, index=index).results == clean.results
        # the damaged database is kept aside for forensics
        assert db_path.with_name(db_path.name + ".corrupt").exists()

    def test_doctor_reports_healthy_index(self, registry, tmp_path):
        with RegistryIndex(tmp_path / "idx.sqlite") as index:
            run_batch(registry, index=index)
            report = index.doctor(registry)
        assert report["integrity_ok"] is True
        assert report["rebuilt"] is False


class TestTornWorkspaceJson:
    def test_torn_json_is_skipped_then_recovers(self, registry):
        clean = run_batch(registry)
        original = registry[0].read_text()
        registry[0].write_text(original[: len(original) // 2])
        # the torn .npz-freshness check must not mask the parse error
        workspace.compiled_array_path(registry[0]).unlink(missing_ok=True)

        torn = run_batch(registry)
        assert [s.path for s in torn.skipped] == [str(registry[0])]
        assert len(torn.results) == len(registry) - 1
        assert torn.results == tuple(
            r for r in clean.results if r.path != str(registry[0])
        )

        registry[0].write_text(original)
        healed = run_batch(registry)
        assert healed.results == clean.results and not healed.skipped

    def test_invalid_schema_is_skipped_with_reason(self, registry):
        registry[1].write_text(json.dumps({"not": "a workspace"}))
        workspace.compiled_array_path(registry[1]).unlink(missing_ok=True)
        report = run_batch(registry)
        assert len(report.skipped) == 1
        assert report.skipped[0].path == str(registry[1])
        assert report.skipped[0].error
