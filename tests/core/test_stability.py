"""Tests for weight-stability intervals (Fig. 8 machinery)."""

import numpy as np
import pytest

from repro.core.interval import Interval
from repro.core.model import AdditiveModel
from repro.core.stability import (
    affine_coefficients,
    batch_affine_coefficients,
    stability_interval,
    stability_report,
)
from repro.core.weights import WeightSystem


def brute_force_utilities(problem, objective, x):
    """Re-evaluate average utilities with ``objective``'s local average
    forced to ``x`` and its siblings proportionally rescaled."""
    ws = problem.weights
    hierarchy = problem.hierarchy
    parent = hierarchy.parent_of(objective)
    current = ws.local_average(objective)
    factor = (1.0 - x) / (1.0 - current)
    local = {}
    for node in hierarchy.nodes():
        if node.name == hierarchy.root.name:
            continue
        avg = ws.local_average(node.name)
        if node.name == objective:
            avg = x
        elif hierarchy.parent_of(node.name) is parent.name or (
            hierarchy.parent_of(node.name) is not None
            and hierarchy.parent_of(node.name).name == parent.name
            and node.name != objective
        ):
            avg = avg * factor
        local[node.name] = Interval.point(avg)
    new_ws = WeightSystem(hierarchy, local)
    model = AdditiveModel(problem.with_weights(new_ws))
    return model.average_utilities()


class TestAffineCoefficients:
    @pytest.mark.parametrize("objective", ["cost", "quality", "battery life"])
    @pytest.mark.parametrize("x", [0.1, 0.35, 0.8])
    def test_matches_brute_force(self, small_problem, objective, x):
        model = AdditiveModel(small_problem)
        constant, slope = affine_coefficients(model, objective)
        predicted = constant + x * slope
        actual = brute_force_utilities(small_problem, objective, x)
        assert predicted == pytest.approx(actual, abs=1e-9)

    def test_current_point_reproduces_averages(self, small_problem):
        model = AdditiveModel(small_problem)
        for objective in ("cost", "quality", "vendor support"):
            constant, slope = affine_coefficients(model, objective)
            x0 = small_problem.weights.local_average(objective)
            assert constant + x0 * slope == pytest.approx(
                model.average_utilities(), abs=1e-9
            )

    def test_root_rejected(self, small_problem):
        model = AdditiveModel(small_problem)
        with pytest.raises(ValueError):
            affine_coefficients(model, "overall")


class TestBatchAffineCoefficients:
    """The vectorised sweep must equal the per-objective implementation."""

    def test_matches_per_objective_small(self, small_problem):
        model = AdditiveModel(small_problem)
        names, constants, slopes = batch_affine_coefficients(model)
        assert constants.shape == (len(names), model.n_alternatives)
        for o, objective in enumerate(names):
            constant, slope = affine_coefficients(model, objective)
            assert constants[o] == pytest.approx(constant, abs=1e-12)
            assert slopes[o] == pytest.approx(slope, abs=1e-12)

    def test_matches_per_objective_case_study(self, case_problem, case_model):
        names, constants, slopes = batch_affine_coefficients(case_model)
        assert set(names) == {
            node.name
            for node in case_problem.hierarchy.nodes()
            if node.name != case_problem.hierarchy.root.name
        }
        for o, objective in enumerate(names):
            constant, slope = affine_coefficients(case_model, objective)
            assert constants[o] == pytest.approx(constant, abs=1e-12)
            assert slopes[o] == pytest.approx(slope, abs=1e-12)

    def test_explicit_objective_subset(self, small_problem):
        model = AdditiveModel(small_problem)
        names, constants, slopes = batch_affine_coefficients(
            model, objectives=("quality", "cost")
        )
        assert names == ("quality", "cost")
        assert constants.shape == (2, model.n_alternatives)

    def test_root_rejected(self, small_problem):
        model = AdditiveModel(small_problem)
        with pytest.raises(ValueError):
            batch_affine_coefficients(model, objectives=("overall",))

    def test_report_equals_per_objective_intervals(self, case_problem):
        """stability_report (batched) == stability_interval per objective."""
        model = AdditiveModel(case_problem)
        for mode in ("best", "ranking"):
            report = stability_report(case_problem, mode=mode)
            for name, interval in report.intervals.items():
                reference = stability_interval(
                    case_problem, name, mode=mode, model=model
                )
                if reference is None:
                    assert interval is None
                else:
                    assert interval is not None
                    assert interval.lower == pytest.approx(
                        reference.lower, abs=1e-9
                    )
                    assert interval.upper == pytest.approx(
                        reference.upper, abs=1e-9
                    )

    def test_report_mode_validation(self, small_problem):
        with pytest.raises(ValueError):
            stability_report(small_problem, mode="everything")


class TestStabilityInterval:
    def test_contains_current_point(self, small_problem):
        for objective in ("cost", "quality", "battery life", "vendor support"):
            interval = stability_interval(small_problem, objective)
            assert interval is not None
            current = small_problem.weights.local_average(objective)
            assert interval.contains(current, tol=1e-9)

    def test_mode_validation(self, small_problem):
        with pytest.raises(ValueError):
            stability_interval(small_problem, "cost", mode="everything")

    def test_ranking_mode_is_tighter(self, case_problem):
        for objective in ("Reuse Cost", "Integration"):
            best = stability_interval(case_problem, objective, mode="best")
            ranking = stability_interval(case_problem, objective, mode="ranking")
            assert best is not None
            if ranking is not None:
                assert best.contains_interval(ranking, tol=1e-9)

    def test_boundary_flip_detected(self, case_problem):
        """Moving the funct weight above its stability bound must
        actually change the best alternative (consistency check)."""
        interval = stability_interval(
            case_problem, "N. Functional Requirements", mode="best"
        )
        assert interval is not None and interval.upper < 1.0
        x_beyond = min(1.0, interval.upper + 0.05)
        utilities = brute_force_utilities(
            case_problem, "N. Functional Requirements", x_beyond
        )
        model = AdditiveModel(case_problem)
        names = model.alternative_names
        best_now = names[int(np.argmax(utilities))]
        assert best_now != "Media Ontology"


class TestCaseStudyFig8:
    def test_only_funct_and_naming_bounded(self, case_problem):
        report = stability_report(case_problem, mode="best")
        sensitive = set(report.sensitive_objectives())
        assert sensitive == {
            "N. Functional Requirements",
            "Adequacy naming conventions",
        }

    def test_all_intervals_exist(self, case_problem):
        report = stability_report(case_problem, mode="best")
        assert all(iv is not None for iv in report.intervals.values())

    def test_insensitive_are_full_unit(self, case_problem):
        report = stability_report(case_problem, mode="best")
        full = Interval(0.0, 1.0)
        for name in report.insensitive_objectives():
            assert report.intervals[name].almost_equal(full, tol=1e-6)

    def test_branch_nodes_included(self, case_problem):
        report = stability_report(case_problem, mode="best")
        for branch in ("Reuse Cost", "Understandability", "Integration", "Reliability"):
            assert branch in report.intervals
