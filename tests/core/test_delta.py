"""Delta compilation: patched slices must be bit-identical to recompute.

Covers the schema-v3 incremental stack end to end: component
fingerprints (:func:`repro.core.workspace.component_hashes`), in-place
array patching (:func:`repro.core.engine.delta_compile`,
:meth:`repro.core.engine.StackedProblem.patch_member`), the artifact
diff loader (:func:`repro.core.workspace.load_compiled_delta`), the
runner's delta path and ``watch`` follow mode — plus a hypothesis
property test that random single-component mutations produce delta
re-evaluations bit-identical to a full recompute.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import workspace
from repro.core.engine import (
    StackedProblem,
    compile_problem,
    delta_compile,
)
from repro.core.index import RegistryIndex
from repro.core.runtime import BatchOptions, ShardedRunner

from ..conftest import make_small_problem
from .test_workspace_property import problems

_ARRAY_FIELDS = (
    "u_low",
    "u_avg",
    "u_up",
    "missing",
    "w_low",
    "w_avg",
    "w_up",
    "key_low",
    "key_up",
    "key_count",
    "alt_key",
)


def assert_compiled_equal(a, b):
    assert a.name == b.name
    assert a.alternative_names == b.alternative_names
    assert a.attribute_names == b.attribute_names
    for field in _ARRAY_FIELDS:
        assert np.array_equal(getattr(a, field), getattr(b, field)), field


def change_cell(problem, alt_index=0):
    """The same problem with one performance cell changed."""
    data = workspace.to_dict(problem)
    perf = data["alternatives"][alt_index]["performances"]
    key = sorted(perf)[0]
    perf[key] = 0.0 if perf[key] != 0.0 else 1.0
    return workspace.from_dict(data)


class TestDeltaCompile:
    def test_single_row_patch_matches_fresh_compile(self):
        old_problem = make_small_problem(name="ws")
        new_problem = change_cell(old_problem, alt_index=1)
        old = compile_problem(old_problem)
        patched = delta_compile(old, new_problem, changed_rows=[1])
        assert_compiled_equal(patched, compile_problem(new_problem))

    def test_weight_only_change_needs_no_rows(self):
        old_problem = make_small_problem(name="ws")
        data = workspace.to_dict(old_problem)
        data["weights"]["cost"] = [0.2, 0.6]
        new_problem = workspace.from_dict(data)
        patched = delta_compile(
            compile_problem(old_problem), new_problem, changed_rows=[]
        )
        assert_compiled_equal(patched, compile_problem(new_problem))

    def test_structural_change_is_refused(self):
        old_problem = make_small_problem(name="ws")
        data = workspace.to_dict(old_problem)
        data["alternatives"] = data["alternatives"][:-1]
        new_problem = workspace.from_dict(data)
        with pytest.raises(ValueError):
            delta_compile(compile_problem(old_problem), new_problem, [0])

    def test_old_compiled_arrays_untouched(self):
        old_problem = make_small_problem(name="ws")
        old = compile_problem(old_problem)
        before = {f: getattr(old, f).copy() for f in _ARRAY_FIELDS}
        delta_compile(old, change_cell(old_problem), changed_rows=[0])
        for field in _ARRAY_FIELDS:
            assert np.array_equal(getattr(old, field), before[field]), field


class TestStackedPatch:
    def test_patch_member_matches_restack(self):
        problems_ = [
            make_small_problem(name=f"ws-{i}", missing_cell=i % 2 == 0)
            for i in range(4)
        ]
        compiled = [compile_problem(p) for p in problems_]
        stack = StackedProblem(compiled, range(4))
        replacement = compile_problem(change_cell(problems_[2]))
        stack.patch_member(2, replacement)
        rebuilt = StackedProblem(
            compiled[:2] + [replacement] + compiled[3:], range(4)
        )
        for field in _ARRAY_FIELDS:
            assert np.array_equal(
                getattr(stack, field), getattr(rebuilt, field)
            ), field

    def test_subset_preserves_source_indices(self):
        compiled = [
            compile_problem(make_small_problem(name=f"ws-{i}"))
            for i in range(3)
        ]
        stack = StackedProblem(compiled, [10, 20, 30])
        sub = stack.subset([2, 0])
        assert sub.source_indices == (30, 10)
        assert sub.names == (compiled[2].name, compiled[0].name)


class TestLoadCompiledDelta:
    def _persisted(self, tmp_path, problem):
        path = tmp_path / "ws.json"
        workspace.save(problem, path)
        loaded = workspace.load_compiled(path)
        workspace.save_compiled_arrays(
            loaded,
            workspace.compiled_array_path(path),
            workspace._file_sha256(path),
            workspace.content_hash(problem),
            component_json=workspace.component_json(problem),
        )
        return path, workspace.content_hash(problem)

    def test_detects_changed_rows(self, tmp_path):
        problem = make_small_problem(name="ws")
        path, old_hash = self._persisted(tmp_path, problem)
        old_components = workspace.component_json(problem)
        mutated = change_cell(problem, alt_index=1)
        workspace.save(mutated, path)
        delta = workspace.load_compiled_delta(path, old_hash, old_components)
        assert delta is not None
        assert delta.changed_rows == (1,)
        assert_compiled_equal(delta.compiled, compile_problem(mutated))

    def test_structural_edit_returns_none(self, tmp_path):
        problem = make_small_problem(name="ws")
        path, old_hash = self._persisted(tmp_path, problem)
        old_components = workspace.component_json(problem)
        data = workspace.to_dict(problem)
        data["alternatives"] = data["alternatives"][:-1]
        workspace.save(workspace.from_dict(data), path)
        assert (
            workspace.load_compiled_delta(path, old_hash, old_components)
            is None
        )

    def test_missing_component_json_returns_none(self, tmp_path):
        problem = make_small_problem(name="ws")
        path, old_hash = self._persisted(tmp_path, problem)
        workspace.save(change_cell(problem), path)
        assert workspace.load_compiled_delta(path, old_hash, None) is None


class TestRunnerDeltaPath:
    def _registry(self, tmp_path, n=6):
        paths = []
        for i in range(n):
            problem = make_small_problem(
                missing_cell=i % 2 == 0, name=f"ws-{i:02d}"
            )
            path = tmp_path / f"ws-{i:02d}.json"
            workspace.save(problem, path)
            paths.append(path)
        return paths

    def _mutate_file(self, path):
        data = json.loads(path.read_text())
        perf = data["alternatives"][0]["performances"]
        key = sorted(perf)[0]
        perf[key] = 0.0 if perf[key] != 0.0 else 1.0
        path.write_text(json.dumps(data))

    @pytest.mark.parametrize("simulations", [0, 40])
    def test_delta_run_identical_to_refresh(self, tmp_path, simulations):
        paths = self._registry(tmp_path)
        runner = ShardedRunner(
            workers=1,
            options=BatchOptions(simulations=simulations, seed=7),
        )
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner.run(paths, index=index)
            self._mutate_file(paths[0])
            delta_report = runner.run(paths, index=index)
            full_report = runner.run(paths, index=index, refresh=True)
        assert delta_report.n_delta == 1
        assert delta_report.n_cached == len(paths) - 1
        assert delta_report.results == full_report.results

    def test_structural_edit_falls_back_to_full_evaluation(self, tmp_path):
        paths = self._registry(tmp_path)
        runner = ShardedRunner(workers=1, options=BatchOptions())
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner.run(paths, index=index)
            data = json.loads(paths[0].read_text())
            data["alternatives"] = data["alternatives"][:-1]
            paths[0].write_text(json.dumps(data))
            report = runner.run(paths, index=index)
            reference = runner.run(paths, index=index, refresh=True)
        assert report.n_delta == 0
        assert report.n_cached == len(paths) - 1
        assert report.results == reference.results

    def test_refresh_and_no_index_never_take_delta_path(self, tmp_path):
        paths = self._registry(tmp_path, n=2)
        runner = ShardedRunner(workers=1, options=BatchOptions())
        with RegistryIndex(tmp_path / "index.sqlite") as index:
            runner.run(paths, index=index)
            self._mutate_file(paths[0])
            refreshed = runner.run(paths, index=index, refresh=True)
        plain = runner.run(paths)
        assert refreshed.n_delta == 0
        assert plain.n_delta == 0


class TestWatch:
    def test_watch_reports_delta_cycles(self, tmp_path):
        registry = tmp_path / "registry"
        registry.mkdir()
        for i in range(3):
            workspace.save(
                make_small_problem(name=f"ws-{i}"),
                registry / f"ws-{i}.json",
            )
        runner = ShardedRunner(workers=1, options=BatchOptions())

        def edit_then_stop(cycle):
            if cycle.cycle == 1:
                data = json.loads((registry / "ws-0.json").read_text())
                perf = data["alternatives"][0]["performances"]
                key = sorted(perf)[0]
                perf[key] = 0.0 if perf[key] != 0.0 else 1.0
                (registry / "ws-0.json").write_text(json.dumps(data))
            return cycle.cycle < 2

        with RegistryIndex(registry / ".idx.sqlite") as index:
            cycles = runner.watch(
                registry, index, interval=0.0, on_cycle=edit_then_stop
            )
        assert [c.cycle for c in cycles] == [1, 2]
        assert cycles[0].n_evaluated == 3
        assert cycles[1].n_delta == 1
        assert cycles[1].n_cached == 2

    def test_watch_notices_new_files(self, tmp_path):
        registry = tmp_path / "registry"
        registry.mkdir()
        workspace.save(make_small_problem(name="ws-0"), registry / "a.json")
        runner = ShardedRunner(workers=1, options=BatchOptions())

        def add_file(cycle):
            if cycle.cycle == 1:
                workspace.save(
                    make_small_problem(name="ws-1"), registry / "b.json"
                )
            return None

        with RegistryIndex(registry / ".idx.sqlite") as index:
            cycles = runner.watch(
                registry,
                index,
                interval=0.0,
                max_cycles=2,
                on_cycle=add_file,
            )
        assert cycles[0].n_paths == 1
        assert cycles[1].n_paths == 2
        assert cycles[1].n_cached == 1

    def test_cli_follow_prints_cycle_reports(self, tmp_path, capsys):
        from repro.cli import main

        registry = tmp_path / "registry"
        registry.mkdir()
        workspace.save(make_small_problem(name="ws-0"), registry / "a.json")
        code = main(
            [
                "batch",
                "--follow",
                "--cycles",
                "2",
                "--interval",
                "0",
                str(registry),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cycle 1: 1 workspace(s): 1 evaluated (0 delta)" in out
        assert "cycle 2: 1 workspace(s): 0 evaluated (0 delta)" in out

    def test_cli_follow_conflicts(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--no-cache"):
            main(["batch", "--follow", "--no-cache", str(tmp_path)])
        with pytest.raises(SystemExit, match="--refresh"):
            main(["batch", "--follow", "--refresh", str(tmp_path)])


#: One random single-component edit, applied to a workspace dict.
_MUTATIONS = ("cell", "weight", "name")


@settings(max_examples=20, deadline=None)
@given(problems(), st.data())
def test_random_single_component_mutation_delta_equals_full(problem, data):
    """Property: any single-component edit that keeps the problem
    structure produces a delta re-evaluation bit-identical to a full
    recompute of the same registry."""
    with tempfile.TemporaryDirectory(prefix="delta-prop-") as tmp:
        tmp = Path(tmp)
        path = tmp / "ws.json"
        workspace.save(problem, path)
        runner = ShardedRunner(workers=1, options=BatchOptions())
        with RegistryIndex(tmp / "index.sqlite") as index:
            runner.run([path], index=index)

            doc = json.loads(path.read_text())
            kind = data.draw(st.sampled_from(_MUTATIONS), label="mutation")
            if kind == "cell":
                alts = doc["alternatives"]
                alt = alts[data.draw(
                    st.integers(0, len(alts) - 1), label="alt"
                )]
                attrs = sorted(alt["performances"])
                attr = attrs[data.draw(
                    st.integers(0, len(attrs) - 1), label="attr"
                )]
                value = float(data.draw(st.integers(0, 3), label="value"))
                assume(alt["performances"][attr] != value)
                alt["performances"][attr] = value
            elif kind == "weight":
                nodes = sorted(doc["weights"])
                node = nodes[data.draw(
                    st.integers(0, len(nodes) - 1), label="node"
                )]
                old_low, old_up = doc["weights"][node]
                # Widen the interval: the lower-bound sum can only
                # drop and the upper-bound sum can only grow, so the
                # weight box stays simplex-feasible.
                shrink = data.draw(
                    st.floats(0.5, 0.95, allow_nan=False), label="shrink"
                )
                grow = data.draw(
                    st.floats(0.01, 0.2, allow_nan=False), label="grow"
                )
                interval = [old_low * shrink, min(1.0, old_up + grow)]
                assume(doc["weights"][node] != interval)
                doc["weights"][node] = interval
            else:
                doc["name"] = str(doc.get("name") or "ws") + "-edited"
            path.write_text(json.dumps(doc))

            delta_report = runner.run([path], index=index)
            full_report = runner.run([path], index=index, refresh=True)

        assert delta_report.n_delta == 1
        assert delta_report.results == full_report.results
