"""Cross-process span stitching through the sharded runtime.

The observability contract :mod:`repro.obs` makes with
:class:`~repro.core.runtime.ShardedRunner`:

* spans recorded *inside worker processes* ship home in the chunk
  results and stitch under the parent trace (deterministic order);
* tracing never changes the merged report;
* the per-stage breakdown (``RegistryReport.stage_seconds``) is
  populated exactly when a tracer is installed.
"""

import os

from repro.core import workspace
from repro.core.runtime import BatchOptions, ShardedRunner
from repro.obs import trace

from ..conftest import make_small_problem


def write_registry(tmp_path, n=12):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def traced_run(paths, workers=2, chunk_size=3):
    runner = ShardedRunner(
        workers=workers,
        chunk_size=chunk_size,
        options=BatchOptions(simulations=64, seed=7),
    )
    with trace.tracing() as tracer:
        report = runner.run(paths)
    return report, tracer


class TestWorkerSpanStitching:
    def test_worker_spans_ship_home(self, tmp_path):
        paths = write_registry(tmp_path)
        _, tracer = traced_run(paths)
        pids = {s.pid for s in tracer.spans()}
        assert os.getpid() in pids
        assert len(pids) > 1, "expected spans recorded in worker processes"

    def test_stage_names_cover_the_pipeline(self, tmp_path):
        paths = write_registry(tmp_path)
        _, tracer = traced_run(paths)
        names = {s.name for s in tracer.spans()}
        assert {
            "registry.run",
            "registry.fan_out",
            "registry.round",
            "chunk.evaluate",
            "workspace.load",
            "eval.stacked",
            "eval.montecarlo",
        } <= names

    def test_one_trace_id_after_stitching(self, tmp_path):
        paths = write_registry(tmp_path)
        _, tracer = traced_run(paths)
        assert {s.trace_id for s in tracer.spans()} == {tracer.trace_id}

    def test_worker_roots_parent_under_fan_out(self, tmp_path):
        paths = write_registry(tmp_path)
        _, tracer = traced_run(paths)
        spans = tracer.spans()
        fan = next(s for s in spans if s.name == "registry.fan_out")
        parent_pid = os.getpid()
        worker_chunks = [
            s
            for s in spans
            if s.name == "chunk.evaluate" and s.pid != parent_pid
        ]
        assert worker_chunks
        assert all(s.parent_id == fan.span_id for s in worker_chunks)
        # every stitched span resolves to a parent within the trace
        ids = {s.span_id for s in spans}
        for record in spans:
            if record.parent_id is not None:
                assert record.parent_id in ids

    def test_stitched_order_is_deterministic(self, tmp_path):
        paths = write_registry(tmp_path)
        # warm the .npz compile cache so both traced runs share the
        # same cache state (compile spans appear only on cold runs)
        ShardedRunner(
            workers=2,
            chunk_size=3,
            options=BatchOptions(simulations=64, seed=7),
        ).run(paths)
        _, first = traced_run(paths)
        _, second = traced_run(paths)
        assert [s.name for s in first.spans()] == [
            s.name for s in second.spans()
        ]
        # adopted chunks keep registry order: the chunk spans' first
        # workspace attribute is non-decreasing across the span list
        def chunk_order(tracer):
            return [
                s.attributes.get("n")
                for s in tracer.spans()
                if s.name == "chunk.evaluate"
            ]

        assert chunk_order(first) == chunk_order(second)


class TestTracingChangesNothing:
    def test_results_identical_with_and_without_tracer(self, tmp_path):
        paths = write_registry(tmp_path)
        options = BatchOptions(simulations=64, seed=7)
        plain = ShardedRunner(workers=2, chunk_size=3, options=options).run(
            paths
        )
        traced, _ = traced_run(paths)
        assert traced.results == plain.results
        assert traced.skipped == plain.skipped

    def test_serial_path_ships_no_payloads_but_still_traces(self, tmp_path):
        paths = write_registry(tmp_path, n=4)
        runner = ShardedRunner(workers=1, options=BatchOptions())
        with trace.tracing() as tracer:
            report = runner.run(paths)
        assert len(report.results) == 4
        names = {s.name for s in tracer.spans()}
        assert "workspace.load" in names
        assert "eval.stacked" in names
        assert {s.pid for s in tracer.spans()} == {os.getpid()}


class TestStageSeconds:
    def test_populated_only_under_tracing(self, tmp_path):
        paths = write_registry(tmp_path, n=4)
        options = BatchOptions()
        untraced = ShardedRunner(workers=1, options=options).run(paths)
        assert untraced.stage_seconds == ()
        traced, _ = traced_run(paths, workers=1)
        stages = dict(traced.stage_seconds)
        assert "eval.stacked" in stages
        assert all(seconds >= 0.0 for seconds in stages.values())
        assert list(stages) == sorted(stages)

    def test_worker_time_included(self, tmp_path):
        paths = write_registry(tmp_path)
        report, tracer = traced_run(paths)
        stages = dict(report.stage_seconds)
        parent_pid = os.getpid()
        worker_eval = [
            s
            for s in tracer.spans()
            if s.name == "eval.stacked" and s.pid != parent_pid
        ]
        assert worker_eval, "expected worker-side eval spans"
        assert stages["eval.stacked"] > 0.0
