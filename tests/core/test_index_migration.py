"""Legacy registry-index schemas must migrate in place, never error."""

import json
import sqlite3

import pytest

from repro.core import workspace
from repro.core.index import SCHEMA_VERSION, CachedResult, RegistryIndex
from repro.core.runtime import BatchOptions, ShardedRunner

from ..conftest import make_small_problem

#: The PR 3-era schema: no ``group_json`` column (and, for the oldest
#: variant, none of the nullable Monte Carlo tail columns either).
_LEGACY_RESULTS_V1 = """
CREATE TABLE results (
    content_hash     TEXT NOT NULL,
    config_hash      TEXT NOT NULL,
    sub_index        INTEGER NOT NULL,
    name             TEXT NOT NULL,
    n_alternatives   INTEGER NOT NULL,
    n_attributes     INTEGER NOT NULL,
    best_name        TEXT NOT NULL,
    best_minimum     REAL NOT NULL,
    best_average     REAL NOT NULL,
    best_maximum     REAL NOT NULL,
    ever_best        INTEGER,
    top5_fluctuation INTEGER,
    PRIMARY KEY (content_hash, config_hash, sub_index)
);
"""

_LEGACY_RESULTS_OLDEST = """
CREATE TABLE results (
    content_hash     TEXT NOT NULL,
    config_hash      TEXT NOT NULL,
    sub_index        INTEGER NOT NULL,
    name             TEXT NOT NULL,
    n_alternatives   INTEGER NOT NULL,
    n_attributes     INTEGER NOT NULL,
    best_name        TEXT NOT NULL,
    best_minimum     REAL NOT NULL,
    best_average     REAL NOT NULL,
    best_maximum     REAL NOT NULL,
    PRIMARY KEY (content_hash, config_hash, sub_index)
);
"""

#: The PR 4/5-era results schema: ``group_json`` present, but the
#: workspaces table still lacks the v3 fingerprint tail.
_LEGACY_RESULTS_V2 = """
CREATE TABLE results (
    content_hash     TEXT NOT NULL,
    config_hash      TEXT NOT NULL,
    sub_index        INTEGER NOT NULL,
    name             TEXT NOT NULL,
    n_alternatives   INTEGER NOT NULL,
    n_attributes     INTEGER NOT NULL,
    best_name        TEXT NOT NULL,
    best_minimum     REAL NOT NULL,
    best_average     REAL NOT NULL,
    best_maximum     REAL NOT NULL,
    ever_best        INTEGER,
    top5_fluctuation INTEGER,
    group_json       TEXT,
    PRIMARY KEY (content_hash, config_hash, sub_index)
);
"""

_LEGACY_COMMON = """
CREATE TABLE index_meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE workspaces (
    path            TEXT PRIMARY KEY,
    mtime_ns        INTEGER NOT NULL,
    size            INTEGER NOT NULL,
    source_sha      TEXT NOT NULL,
    content_hash    TEXT NOT NULL,
    npz_source_sha  TEXT,
    n_alternatives  INTEGER NOT NULL,
    n_attributes    INTEGER NOT NULL
);
"""


def build_legacy_db(path, results_sql, version="1", with_row=True):
    conn = sqlite3.connect(path)
    try:
        conn.executescript(_LEGACY_COMMON + results_sql)
        conn.execute(
            "INSERT INTO index_meta (key, value) VALUES ('schema_version', ?)",
            (version,),
        )
        if with_row:
            n_cols = len(
                conn.execute("PRAGMA table_info(results)").fetchall()
            )
            row = ("hash-a", "cfg-a", 0, "legacy", 3, 4, "best", 0.1, 0.5, 0.9)
            row = row + (None,) * (n_cols - len(row))
            conn.execute(
                "INSERT INTO results VALUES (%s)" % ", ".join("?" * n_cols),
                row,
            )
        conn.commit()
    finally:
        conn.close()


class TestSchemaMigration:
    @pytest.mark.parametrize(
        "results_sql", [_LEGACY_RESULTS_V1, _LEGACY_RESULTS_OLDEST]
    )
    def test_legacy_index_opens_and_migrates(self, tmp_path, results_sql):
        db = tmp_path / "legacy.sqlite"
        build_legacy_db(db, results_sql)
        with RegistryIndex(db) as index:
            rows = index.lookup_results("hash-a", "cfg-a")
            assert rows == (
                CachedResult(
                    sub_index=0,
                    name="legacy",
                    n_alternatives=3,
                    n_attributes=4,
                    best_name="best",
                    best_minimum=0.1,
                    best_average=0.5,
                    best_maximum=0.9,
                ),
            )
            status = index.status()
            assert status["n_result_rows"] == 1
            assert status["n_group_rows"] == 0
        # the version stamp is brought forward
        conn = sqlite3.connect(db)
        try:
            value = conn.execute(
                "SELECT value FROM index_meta WHERE key = 'schema_version'"
            ).fetchone()[0]
        finally:
            conn.close()
        assert value == str(SCHEMA_VERSION)

    def test_legacy_index_status_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        registry = tmp_path / "registry"
        registry.mkdir()
        db = registry / ".repro-index.sqlite"
        build_legacy_db(db, _LEGACY_RESULTS_OLDEST)
        code = main(["index", "status", str(registry)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 row(s)" in out

    def test_migrated_index_accepts_group_rows(self, tmp_path):
        db = tmp_path / "legacy.sqlite"
        build_legacy_db(db, _LEGACY_RESULTS_V1)
        with RegistryIndex(db) as index:
            index.record_run(
                [],
                {
                    "hash-b": (
                        CachedResult(
                            sub_index=0,
                            name="fresh",
                            n_alternatives=2,
                            n_attributes=2,
                            best_name="x",
                            best_minimum=0.0,
                            best_average=0.5,
                            best_maximum=1.0,
                            group_json='{"borda":["x"]}',
                        ),
                    )
                },
                "cfg-g",
            )
            rows = index.lookup_results("hash-b", "cfg-g")
            assert rows[0].group_json == '{"borda":["x"]}'

    def test_newer_schema_is_refused(self, tmp_path):
        db = tmp_path / "future.sqlite"
        build_legacy_db(
            db,
            _LEGACY_RESULTS_V1,
            version=str(SCHEMA_VERSION + 1),
            with_row=False,
        )
        with pytest.raises(ValueError, match="unsupported registry index"):
            RegistryIndex(db)

    def test_garbage_version_is_refused(self, tmp_path):
        db = tmp_path / "garbage.sqlite"
        build_legacy_db(
            db, _LEGACY_RESULTS_V1, version="not-a-number", with_row=False
        )
        with pytest.raises(ValueError, match="unsupported registry index"):
            RegistryIndex(db)

    def test_fresh_index_stamped_current(self, tmp_path):
        with RegistryIndex(tmp_path / "fresh.sqlite") as index:
            row = index._conn.execute(
                "SELECT value FROM index_meta WHERE key = 'schema_version'"
            ).fetchone()
            assert row["value"] == str(SCHEMA_VERSION)


class TestWorkspaceTailMigration:
    """v1/v2 databases gain the v3 fingerprint columns in place."""

    @pytest.mark.parametrize(
        "results_sql, version",
        [(_LEGACY_RESULTS_OLDEST, "1"), (_LEGACY_RESULTS_V2, "2")],
    )
    def test_workspace_columns_added(self, tmp_path, results_sql, version):
        db = tmp_path / "legacy.sqlite"
        build_legacy_db(db, results_sql, version=version)
        with RegistryIndex(db) as index:
            columns = {
                row["name"]
                for row in index._conn.execute(
                    "PRAGMA table_info(workspaces)"
                )
            }
            assert {"ctime_ns", "recorded_ns", "component_json"} <= columns
            # the legacy result row is still served after migration
            assert index.lookup_results("hash-a", "cfg-a") is not None

    @pytest.mark.parametrize(
        "results_sql, version",
        [(_LEGACY_RESULTS_OLDEST, "1"), (_LEGACY_RESULTS_V2, "2")],
    )
    def test_legacy_workspace_row_still_probes(
        self, tmp_path, results_sql, version
    ):
        """A pre-v3 row (no ctime/recording time) must never serve a
        stale classification: its stat pair can't match the v3 triple,
        so the probe falls through to the byte check and reports the
        unchanged file as touched."""
        problem = make_small_problem(name="legacy-ws")
        path = tmp_path / "legacy-ws.json"
        workspace.save(problem, path)
        st = path.stat()
        source_sha = workspace._file_sha256(path)
        content = workspace.content_hash(problem)

        db = tmp_path / "legacy.sqlite"
        build_legacy_db(db, results_sql, version=version, with_row=False)
        conn = sqlite3.connect(db)
        try:
            conn.execute(
                "INSERT INTO workspaces VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(path.resolve()),
                    st.st_mtime_ns,
                    st.st_size,
                    source_sha,
                    content,
                    None,
                    len(problem.alternative_names),
                    len(problem.attribute_names),
                ),
            )
            conn.commit()
        finally:
            conn.close()

        with RegistryIndex(db) as index:
            stored = index.lookup_workspace(path)
            assert stored is not None
            assert stored.ctime_ns is None
            assert stored.component_json is None
            record, status = index.probe_with_status(path)
            assert status == "touched"
            assert record.content_hash == content
            assert record.ctime_ns == st.st_ctime_ns

    def test_legacy_row_upgrades_into_delta_eligibility(self, tmp_path):
        """After one run over a migrated index, rows carry component
        hashes, so the next one-cell edit takes the delta path."""
        db = tmp_path / "legacy.sqlite"
        build_legacy_db(db, _LEGACY_RESULTS_V2, version="2", with_row=False)
        problem = make_small_problem(name="legacy-ws")
        path = tmp_path / "legacy-ws.json"
        workspace.save(problem, path)

        runner = ShardedRunner(workers=1, options=BatchOptions())
        with RegistryIndex(db) as index:
            first = runner.run([path], index=index)
            assert index.lookup_workspace(path).component_json is not None
            data = json.loads(path.read_text())
            perf = data["alternatives"][0]["performances"]
            key = sorted(perf)[0]
            perf[key] = 0 if perf[key] != 0 else 1
            path.write_text(json.dumps(data))
            second = runner.run([path], index=index)
        assert first.n_delta == 0
        assert second.n_delta == 1
