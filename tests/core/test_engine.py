"""Equivalence tests for the vectorized batch evaluation engine.

The engine must be a pure speedup: every number it produces — Fig. 6
rankings, weight-scenario utilities, Monte Carlo ranks, dominance
matrices, rank intervals — has to match the scalar/public APIs
exactly, same seeds giving same ranks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import dominance_matrix
from repro.core.engine import (
    BatchEvaluator,
    CompiledProblem,
    batch_dominance,
    compile_problem,
    rank_matrix,
)
from repro.core.hierarchy import Hierarchy, ObjectiveNode
from repro.core.interval import Interval
from repro.core.model import AdditiveModel, evaluate
from repro.core.montecarlo import simulate
from repro.core.performance import Alternative, PerformanceTable
from repro.core.problem import DecisionProblem
from repro.core.rankintervals import rank_intervals
from repro.core.scales import MISSING, linguistic_0_3
from repro.core.utility import banded_discrete_utility
from repro.core.weights import WeightSystem

from ..conftest import make_small_problem


class TestCompiledProblem:
    def test_shapes(self, case_problem):
        compiled = compile_problem(case_problem)
        n_alt, n_att = compiled.n_alternatives, compiled.n_attributes
        assert compiled.u_low.shape == (n_alt, n_att)
        assert compiled.u_avg.shape == (n_alt, n_att)
        assert compiled.u_up.shape == (n_alt, n_att)
        assert compiled.missing.shape == (n_alt, n_att)
        assert compiled.w_low.shape == (n_att,)
        assert compiled.alt_key.shape == (n_att, n_alt)
        assert compiled.key_low.shape == compiled.key_up.shape

    def test_matches_additive_model_arrays(self, case_problem):
        compiled = compile_problem(case_problem)
        model = AdditiveModel(case_problem)
        assert np.array_equal(compiled.u_low, model.u_low)
        assert np.array_equal(compiled.u_avg, model.u_avg)
        assert np.array_equal(compiled.u_up, model.u_up)
        assert np.array_equal(compiled.w_avg, model.w_avg)

    def test_envelopes_are_ordered(self, case_problem):
        compiled = compile_problem(case_problem)
        assert np.all(compiled.u_low <= compiled.u_avg + 1e-12)
        assert np.all(compiled.u_avg <= compiled.u_up + 1e-12)

    def test_missing_mask(self):
        compiled = compile_problem(make_small_problem(missing_cell=True))
        i = compiled.alternative_names.index("mid")
        j = compiled.attribute_names.index("support")
        assert compiled.missing[i, j]
        assert compiled.missing.sum() == 1

    def test_alternative_index(self, case_problem):
        compiled = compile_problem(case_problem)
        assert compiled.alternative_index("COMM") == (
            compiled.alternative_names.index("COMM")
        )
        with pytest.raises(KeyError):
            compiled.alternative_index("Nope")

    def test_accepts_model_and_compiled_sources(self, case_problem):
        compiled = compile_problem(case_problem)
        model = AdditiveModel(case_problem)
        assert BatchEvaluator(compiled).compiled is compiled
        assert BatchEvaluator(model).compiled is model.compiled
        with pytest.raises(TypeError):
            BatchEvaluator(42)


class TestEvaluationEquivalence:
    def test_fig6_ranking_identical(self, case_problem, case_model):
        batch = BatchEvaluator(compile_problem(case_problem)).evaluate()
        scalar = case_model.evaluate()
        assert batch.problem_name == scalar.problem_name
        for b, s in zip(batch, scalar):
            assert (b.name, b.rank) == (s.name, s.rank)
            assert b.minimum == s.minimum
            assert b.average == s.average
            assert b.maximum == s.maximum

    def test_evaluate_function_path(self, case_problem):
        by_objective = evaluate(case_problem, "Understandability")
        batch = BatchEvaluator(
            compile_problem(case_problem.restricted_to("Understandability"))
        ).evaluate()
        assert by_objective.names_by_rank == batch.names_by_rank

    def test_utility_intervals(self, case_model):
        evaluator = case_model.evaluator
        intervals = evaluator.utility_intervals()
        mins = evaluator.minimum_utilities()
        maxs = evaluator.maximum_utilities()
        for i, iv in enumerate(intervals):
            assert iv.lower == float(mins[i])
            assert iv.upper == float(maxs[i])

    def test_scenario_ranks_match_single_evaluations(self, case_model):
        rng = np.random.default_rng(5)
        weights = rng.dirichlet(np.ones(case_model.n_attributes), size=8)
        evaluator = case_model.evaluator
        ranks = evaluator.scenario_ranks(weights)
        assert ranks.shape == (8, case_model.n_alternatives)
        for s in range(8):
            utilities = case_model.utilities_for_weights(weights[s])
            expected = rank_matrix(utilities[None, :])[0]
            assert np.array_equal(ranks[s], expected)


class TestMonteCarloEquivalence:
    @pytest.mark.parametrize("method", ["random", "rank_order", "intervals"])
    @pytest.mark.parametrize("mode", [False, "missing", True])
    def test_simulate_matches_engine(self, method, mode):
        problem = make_small_problem(missing_cell=True)
        via_public = simulate(
            problem,
            method=method,
            n_simulations=256,
            seed=99,
            sample_utilities=mode,
        )
        ranks, acceptance = BatchEvaluator(
            compile_problem(problem)
        ).monte_carlo_ranks(
            method=method,
            n_simulations=256,
            seed=99,
            sample_utilities=mode,
        )
        assert np.array_equal(via_public.ranks, ranks)
        assert via_public.acceptance_rate == acceptance

    def test_simulate_accepts_compiled(self, case_problem):
        compiled = compile_problem(case_problem)
        a = simulate(compiled, n_simulations=64, seed=3, sample_utilities="missing")
        b = simulate(case_problem, n_simulations=64, seed=3, sample_utilities="missing")
        assert np.array_equal(a.ranks, b.ranks)

    def test_case_study_seed2012_fingerprint(self, case_mc):
        """The Fig. 9/10 run is pinned: refactors must not move it."""
        assert set(case_mc.ever_best()) == {"Media Ontology", "Boemie VDO"}
        assert case_mc.statistics_for("MPEG7 Ontology").mode == 23
        assert case_mc.statistics_for("Photography Ontology").mode == 22

    def test_full_utility_sampling_respects_envelopes(self):
        problem = make_small_problem(missing_cell=True)
        compiled = compile_problem(problem)
        evaluator = BatchEvaluator(compiled)
        rng = np.random.default_rng(11)
        u = evaluator._sampled_utility_tensor(128, rng)
        assert u.shape == (128, compiled.n_alternatives, compiled.n_attributes)
        # Draws stay inside the class envelopes after monotonisation.
        assert np.all(u >= compiled.u_low[None] - 1e-12)
        assert np.all(u <= compiled.u_up[None] + 1e-12)

    def test_engine_simulate_wrapper(self, case_problem):
        evaluator = BatchEvaluator(compile_problem(case_problem))
        result = evaluator.simulate(
            method="intervals", n_simulations=32, seed=1, sample_utilities="missing"
        )
        assert result.n_simulations == 32
        assert result.names == case_problem.alternative_names


class TestDominanceEquivalence:
    def test_batch_matches_public_matrix(self, case_model):
        from repro.core.dominance import _lp_solver

        batch = batch_dominance(case_model, _lp_solver("scipy"))
        public = dominance_matrix(case_model)
        assert np.array_equal(batch, public)

    def test_solvers_agree_through_engine(self):
        problem = make_small_problem()
        model = AdditiveModel(problem)
        assert np.array_equal(
            dominance_matrix(model, solver="scipy"),
            dominance_matrix(model, solver="simplex"),
        )

    def test_unknown_solver_fails_fast(self, case_model):
        with pytest.raises(ValueError):
            dominance_matrix(case_model, solver="mystery")

    def test_rank_intervals_accept_evaluator(self, case_model):
        via_model = rank_intervals(case_model)
        via_engine = case_model.evaluator.rank_intervals()
        assert via_model == via_engine

    def test_rank_intervals_bracket_monte_carlo(self, case_model, case_mc):
        intervals = case_model.evaluator.rank_intervals()
        for name in case_model.alternative_names:
            stats = case_mc.statistics_for(name)
            assert intervals[name].best <= stats.minimum
            assert intervals[name].worst >= stats.maximum


# ----------------------------------------------------------------------
# Property: vectorized and scalar utilities agree on random problems
# ----------------------------------------------------------------------

def _random_problem(levels, weight_spread):
    scales = {"a": linguistic_0_3("a"), "b": linguistic_0_3("b")}
    table = PerformanceTable(
        scales,
        [
            Alternative(f"alt{i}", {"a": la, "b": lb})
            for i, (la, lb) in enumerate(levels)
        ],
    )
    hierarchy = Hierarchy(
        ObjectiveNode(
            "root",
            children=[
                ObjectiveNode("ca", attribute="a"),
                ObjectiveNode("cb", attribute="b"),
            ],
        )
    )
    weights = WeightSystem(
        hierarchy,
        {
            "ca": Interval(0.5 - weight_spread, 0.5 + weight_spread),
            "cb": Interval(0.5 - weight_spread, 0.5 + weight_spread),
        },
    )
    utilities = {
        "a": banded_discrete_utility(scales["a"]),
        "b": banded_discrete_utility(scales["b"]),
    }
    return DecisionProblem(hierarchy, table, utilities, weights)


@settings(max_examples=30, deadline=None)
@given(
    levels=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=2,
        max_size=6,
    ),
    weight_spread=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_vectorized_and_scalar_utilities_agree(levels, weight_spread, seed):
    """Scalar per-alternative dot products == the engine's batch matmul."""
    problem = _random_problem(levels, weight_spread)
    compiled = compile_problem(problem)
    evaluator = BatchEvaluator(compiled)
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(compiled.n_attributes), size=16)

    batch = evaluator.utilities_for_weights(weights)  # (n_alt, 16)
    for s in range(16):
        scalar = np.array(
            [
                sum(
                    weights[s, j] * compiled.u_avg[i, j]
                    for j in range(compiled.n_attributes)
                )
                for i in range(compiled.n_alternatives)
            ]
        )
        assert batch[:, s] == pytest.approx(scalar, abs=1e-12)

    # The three deterministic readings agree with explicit scalar sums.
    mins = evaluator.minimum_utilities()
    maxs = evaluator.maximum_utilities()
    for i in range(compiled.n_alternatives):
        assert mins[i] == pytest.approx(
            sum(
                compiled.w_low[j] * compiled.u_low[i, j]
                for j in range(compiled.n_attributes)
            ),
            abs=1e-12,
        )
        assert maxs[i] == pytest.approx(
            sum(
                compiled.w_up[j] * compiled.u_up[i, j]
                for j in range(compiled.n_attributes)
            ),
            abs=1e-12,
        )


class TestWorkspaceCompileCache:
    def test_cache_hit_on_identical_content(self, tmp_path):
        from repro.core import workspace

        workspace.clear_compile_cache()
        problem = make_small_problem()
        first = workspace.compile_cached(problem)
        second = workspace.compile_cached(make_small_problem())
        assert second is first
        info = workspace.compile_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_load_compiled_roundtrip(self, tmp_path):
        from repro.core import workspace

        workspace.clear_compile_cache()
        problem = make_small_problem()
        path = tmp_path / "small.json"
        workspace.save(problem, path)
        a = workspace.load_compiled(path)
        b = workspace.load_compiled(path)
        assert a is b
        assert isinstance(a, CompiledProblem)
        assert a.alternative_names == problem.alternative_names

    def test_cached_compiled_form_composes_with_additive_model(self):
        from repro.core import workspace

        workspace.clear_compile_cache()
        workspace.compile_cached(make_small_problem())
        fresh = make_small_problem()  # equal content, different object
        model = AdditiveModel(fresh, workspace.compile_cached(fresh))
        assert model.evaluate().best.name == "premium"
        with pytest.raises(ValueError):
            AdditiveModel(
                make_small_problem(), compile_problem(_random_problem([(1, 2)] * 2, 0.1))
            )

    def test_different_content_misses(self):
        from repro.core import workspace

        workspace.clear_compile_cache()
        workspace.compile_cached(make_small_problem())
        workspace.compile_cached(make_small_problem(missing_cell=True))
        assert workspace.compile_cache_info()["misses"] == 2
