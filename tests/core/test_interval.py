"""Unit + property tests for the Interval type."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interval import Interval, hull, intersect_all

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw):
    a = draw(finite)
    b = draw(finite)
    return Interval(min(a, b), max(a, b))


class TestConstruction:
    def test_orders_bounds(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)
        with pytest.raises(ValueError):
            Interval(0.0, float("nan"))

    def test_point(self):
        p = Interval.point(0.4)
        assert p.is_point
        assert p.lower == p.upper == 0.4

    def test_unit_is_missing_utility(self):
        assert Interval.unit() == Interval(0.0, 1.0)

    def test_from_bounds(self):
        assert Interval.from_bounds([3.0, 1.0, 2.0]) == Interval(1.0, 3.0)

    def test_from_bounds_empty(self):
        with pytest.raises(ValueError):
            Interval.from_bounds([])


class TestQueries:
    def test_midpoint_width(self):
        iv = Interval(0.2, 0.6)
        assert iv.midpoint == pytest.approx(0.4)
        assert iv.width == pytest.approx(0.4)

    def test_contains(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(0.0) and iv.contains(1.0) and iv.contains(0.5)
        assert not iv.contains(1.5)

    def test_contains_interval(self):
        assert Interval(0, 1).contains_interval(Interval(0.2, 0.8))
        assert not Interval(0.2, 0.8).contains_interval(Interval(0, 1))

    def test_overlaps(self):
        assert Interval(0, 1).overlaps(Interval(1, 2))
        assert not Interval(0, 1).overlaps(Interval(1.1, 2))

    def test_clamp(self):
        iv = Interval(0.0, 1.0)
        assert iv.clamp(-1.0) == 0.0
        assert iv.clamp(2.0) == 1.0
        assert iv.clamp(0.3) == 0.3


class TestArithmetic:
    def test_add_scalar(self):
        assert Interval(0, 1) + 2 == Interval(2, 3)
        assert 2 + Interval(0, 1) == Interval(2, 3)

    def test_sub(self):
        assert Interval(1, 2) - Interval(0, 1) == Interval(0, 2)
        assert 1 - Interval(0, 1) == Interval(0, 1)

    def test_mul_signs(self):
        assert Interval(-1, 2) * Interval(-3, 1) == Interval(-6, 3)

    def test_div(self):
        assert Interval(1, 2) / Interval(2, 4) == Interval(0.25, 1.0)

    def test_div_by_zero_interval(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1, 2) / Interval(-1, 1)

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_type_error(self):
        with pytest.raises(TypeError):
            Interval(0, 1) + "x"  # type: ignore[operator]


class TestSetOps:
    def test_intersection(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_hull_method(self):
        assert Interval(0, 1).hull(Interval(2, 3)) == Interval(0, 3)

    def test_hull_function(self):
        assert hull([Interval(0, 1), Interval(-1, 0.5)]) == Interval(-1, 1)

    def test_intersect_all(self):
        assert intersect_all(
            [Interval(0, 3), Interval(1, 4), Interval(2, 5)]
        ) == Interval(2, 3)
        assert intersect_all([Interval(0, 1), Interval(2, 3)]) is None

    def test_empty_collections(self):
        with pytest.raises(ValueError):
            hull([])
        with pytest.raises(ValueError):
            intersect_all([])


class TestOrdering:
    def test_strong_order(self):
        assert Interval(0, 1) < Interval(2, 3)
        assert not Interval(0, 2) < Interval(1, 3)
        assert Interval(2, 3) > Interval(0, 1)
        assert Interval(0, 1) <= Interval(1, 2)

    def test_iter(self):
        assert list(Interval(1, 2)) == [1, 2]

    def test_hashable(self):
        assert len({Interval(0, 1), Interval(0, 1), Interval(0, 2)}) == 2


# ----------------------------------------------------------------------
# Property-based laws
# ----------------------------------------------------------------------

@given(intervals(), intervals())
def test_add_is_commutative(a, b):
    assert (a + b).almost_equal(b + a, tol=1e-6)


@given(intervals(), intervals())
def test_mul_is_commutative(a, b):
    assert (a * b).almost_equal(b * a, tol=1e-3)


@given(intervals(), intervals(), finite)
def test_addition_is_inclusion_monotone(a, b, x):
    """x in a and y in b implies x + y in a + b (checked at x, b ends)."""
    x = a.clamp(x)
    total = a + b
    assert total.contains(x + b.lower, tol=1e-6)
    assert total.contains(x + b.upper, tol=1e-6)


@given(intervals(), intervals())
def test_hull_contains_both(a, b):
    h = a.hull(b)
    assert h.contains_interval(a) and h.contains_interval(b)


@given(intervals(), intervals())
def test_intersection_contained_in_both(a, b):
    common = a.intersection(b)
    if common is not None:
        assert a.contains_interval(common)
        assert b.contains_interval(common)
    else:
        assert not a.overlaps(b, tol=0.0)


@given(intervals())
def test_sub_self_contains_zero(a):
    assert (a - a).contains(0.0, tol=1e-6)


@given(intervals(), finite, finite)
def test_scale_shift(a, factor, offset):
    factor = max(min(factor, 1e3), -1e3)
    offset = max(min(offset, 1e3), -1e3)
    scaled = a.scale(factor)
    assert scaled.width == pytest.approx(abs(factor) * a.width, rel=1e-6, abs=1e-6)
    shifted = a.shift(offset)
    assert shifted.width == pytest.approx(a.width, rel=1e-9, abs=1e-9)
    assert shifted.midpoint == pytest.approx(a.midpoint + offset, rel=1e-6, abs=1e-6)
