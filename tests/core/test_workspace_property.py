"""Property test: randomly generated problems survive workspace I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import Hierarchy, ObjectiveNode
from repro.core.interval import Interval
from repro.core.model import evaluate
from repro.core.performance import Alternative, PerformanceTable
from repro.core.problem import DecisionProblem
from repro.core.scales import MISSING, linguistic_0_3
from repro.core.utility import banded_discrete_utility
from repro.core.weights import WeightSystem
from repro.core.workspace import from_dict, to_dict


@st.composite
def problems(draw):
    n_attrs = draw(st.integers(min_value=2, max_value=5))
    n_alts = draw(st.integers(min_value=2, max_value=6))
    attrs = [f"a{j}" for j in range(n_attrs)]
    scales = {a: linguistic_0_3(a) for a in attrs}
    cells = draw(
        st.lists(
            st.lists(
                st.one_of(st.integers(0, 3), st.just(MISSING)),
                min_size=n_attrs,
                max_size=n_attrs,
            ),
            min_size=n_alts,
            max_size=n_alts,
        )
    )
    table = PerformanceTable(
        scales,
        [
            Alternative(f"alt{i}", dict(zip(attrs, row)))
            for i, row in enumerate(cells)
        ],
    )
    hierarchy = Hierarchy(
        ObjectiveNode(
            "root",
            children=[ObjectiveNode(f"c{j}", attribute=a) for j, a in enumerate(attrs)],
        )
    )
    share = 1.0 / n_attrs
    spread = draw(st.floats(min_value=0.0, max_value=0.5))
    weights = WeightSystem(
        hierarchy,
        {
            f"c{j}": Interval(share * (1 - spread), min(1.0, share * (1 + spread)))
            for j in range(n_attrs)
        },
    )
    best_precise = draw(st.booleans())
    utilities = {
        a: banded_discrete_utility(scales[a], best_is_precise=best_precise)
        for a in attrs
    }
    return DecisionProblem(hierarchy, table, utilities, weights)


@settings(max_examples=40, deadline=None)
@given(problems())
def test_workspace_round_trip_preserves_evaluation(problem):
    restored = from_dict(to_dict(problem))
    original = evaluate(problem)
    again = evaluate(restored)
    assert again.names_by_rank == original.names_by_rank
    for a, b in zip(again, original):
        assert a.minimum == pytest.approx(b.minimum)
        assert a.average == pytest.approx(b.average)
        assert a.maximum == pytest.approx(b.maximum)


@settings(max_examples=25, deadline=None)
@given(problems())
def test_min_avg_max_ordering_holds_universally(problem):
    """min <= avg <= max for every alternative of every random problem
    whose weight box straddles the simplex."""
    for row in evaluate(problem):
        assert row.minimum <= row.average + 1e-9
        assert row.average <= row.maximum + 1e-9
