"""Tests for the DecisionProblem facade and its validation."""

import pytest

from repro.core.problem import DecisionProblem

from ..conftest import make_small_problem


class TestValidation:
    def test_valid_problem(self, small_problem):
        assert small_problem.attribute_names == ("price", "battery", "support")
        assert len(small_problem.alternatives) == 3

    def test_table_attribute_mismatch(self, small_problem):
        from repro.core.performance import Alternative, PerformanceTable
        from repro.core.scales import linguistic_0_3

        bad_table = PerformanceTable(
            {"other": linguistic_0_3("other")},
            [Alternative("a", {"other": 1})],
        )
        with pytest.raises(ValueError):
            DecisionProblem(
                small_problem.hierarchy,
                bad_table,
                small_problem.utilities,
                small_problem.weights,
            )

    def test_missing_utility(self, small_problem):
        utilities = dict(small_problem.utilities)
        del utilities["battery"]
        with pytest.raises(ValueError):
            DecisionProblem(
                small_problem.hierarchy,
                small_problem.table,
                utilities,
                small_problem.weights,
            )

    def test_scale_mismatch(self, small_problem):
        from repro.core.scales import linguistic_0_3
        from repro.core.utility import banded_discrete_utility

        utilities = dict(small_problem.utilities)
        utilities["battery"] = banded_discrete_utility(linguistic_0_3("zzz"))
        with pytest.raises(ValueError):
            DecisionProblem(
                small_problem.hierarchy,
                small_problem.table,
                utilities,
                small_problem.weights,
            )

    def test_foreign_weight_system(self, small_problem):
        other = make_small_problem(name="other")
        # same node names -> accepted even though a distinct object
        problem = DecisionProblem(
            small_problem.hierarchy,
            small_problem.table,
            small_problem.utilities,
            other.weights,
        )
        assert problem.weights is other.weights

    def test_utility_lookup(self, small_problem):
        assert small_problem.utility_function("price") is small_problem.utilities["price"]
        with pytest.raises(KeyError):
            small_problem.utility_function("bogus")


class TestDerivedProblems:
    def test_restricted_to(self, small_problem):
        sub = small_problem.restricted_to("quality")
        assert set(sub.attribute_names) == {"battery", "support"}
        assert sub.hierarchy.root.name == "quality"
        assert sub.name.endswith(":quality")

    def test_with_alternatives(self, small_problem):
        sub = small_problem.with_alternatives(["cheap", "premium"])
        assert sub.alternative_names == ("cheap", "premium")

    def test_with_weights(self, small_problem):
        from repro.core.weights import WeightSystem

        uniform = WeightSystem.uniform(small_problem.hierarchy)
        swapped = small_problem.with_weights(uniform)
        assert swapped.weights is uniform
        assert swapped.table is small_problem.table
