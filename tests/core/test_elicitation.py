"""Tests for the elicitation sessions (§III protocols)."""

import pytest

from repro.core.elicitation import (
    UtilityElicitation,
    WeightElicitation,
    elicit_weight_system,
)
from repro.core.interval import Interval
from repro.core.scales import ContinuousScale
from repro.neon.criteria import build_hierarchy


class TestUtilityElicitation:
    def scale(self, ascending=True):
        return ContinuousScale("x", 0.0, 100.0, ascending=ascending)

    def test_precise_answers_build_precise_knots(self):
        session = UtilityElicitation(self.scale())
        session.answer(50.0, 0.7)
        fn = session.build()
        assert fn.utility(50.0).is_point
        assert fn.utility(50.0).lower == pytest.approx(0.7)
        assert fn.utility(0.0).lower == 0.0
        assert fn.utility(100.0).lower == 1.0

    def test_interval_answers_build_classes(self):
        session = UtilityElicitation(self.scale())
        session.answer(40.0, 0.55, 0.70)
        fn = session.build()
        band = fn.utility(40.0)
        assert band.lower == pytest.approx(0.55)
        assert band.upper == pytest.approx(0.70)

    def test_descending_scale_endpoints(self):
        session = UtilityElicitation(self.scale(ascending=False))
        session.answer(30.0, 0.6, 0.8)
        fn = session.build()
        assert fn.utility(0.0).lower == 1.0
        assert fn.utility(100.0).lower == 0.0
        assert fn.utility(30.0).upper == pytest.approx(0.8)

    def test_interior_amounts_only(self):
        session = UtilityElicitation(self.scale())
        with pytest.raises(ValueError):
            session.answer(0.0, 0.5)
        with pytest.raises(ValueError):
            session.answer(100.0, 0.5)

    def test_probability_band_validated(self):
        session = UtilityElicitation(self.scale())
        with pytest.raises(ValueError):
            session.answer(50.0, 0.8, 0.6)
        with pytest.raises(ValueError):
            session.answer(50.0, -0.1)

    def test_inconsistency_detected_and_blocking(self):
        session = UtilityElicitation(self.scale())
        session.answer(30.0, 0.8, 0.9)
        session.answer(60.0, 0.1, 0.2)   # higher amount, lower band
        assert session.inconsistencies() == [(30.0, 60.0)]
        with pytest.raises(ValueError):
            session.build()

    def test_retract(self):
        session = UtilityElicitation(self.scale())
        session.answer(30.0, 0.8, 0.9)
        session.answer(60.0, 0.1, 0.2)
        session.retract(60.0)
        assert session.inconsistencies() == []
        session.build()
        with pytest.raises(KeyError):
            session.retract(99.0)

    def test_overlapping_bands_are_tightened_monotone(self):
        session = UtilityElicitation(self.scale())
        session.answer(30.0, 0.4, 0.8)
        session.answer(60.0, 0.3, 0.9)   # overlaps; not inconsistent
        fn = session.build()
        a, b = fn.utility(30.0), fn.utility(60.0)
        assert b.lower >= a.lower - 1e-12
        assert b.upper >= a.upper - 1e-12


class TestWeightElicitation:
    def test_normalised_intervals(self):
        session = WeightElicitation(["cost", "quality"], reference="cost")
        session.compare("quality", 1.0, 2.0)
        intervals = session.local_intervals()
        # midpoints: cost 1, quality 1.5 -> shares 0.4 / 0.6
        assert intervals["cost"].midpoint == pytest.approx(0.4)
        assert intervals["quality"].midpoint == pytest.approx(0.6)

    def test_pending_tracked(self):
        session = WeightElicitation(["a", "b", "c"], reference="a")
        assert set(session.pending) == {"b", "c"}
        session.compare("b", 2.0)
        assert session.pending == ("c",)
        with pytest.raises(ValueError):
            session.local_intervals()

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightElicitation(["only"], reference="only")
        with pytest.raises(ValueError):
            WeightElicitation(["a", "a"], reference="a")
        with pytest.raises(ValueError):
            WeightElicitation(["a", "b"], reference="zzz")
        session = WeightElicitation(["a", "b"], reference="a")
        with pytest.raises(KeyError):
            session.compare("zzz", 1.0)
        with pytest.raises(ValueError):
            session.compare("a", 2.0)
        with pytest.raises(ValueError):
            session.compare("b", 3.0, 2.0)


class TestElicitWeightSystem:
    def build_sessions(self, hierarchy):
        sessions = {}
        for node in hierarchy.nodes():
            if node.is_leaf:
                continue
            children = [c.name for c in node.children]
            session = WeightElicitation(children, reference=children[0])
            for child in children[1:]:
                session.compare(child, 0.8, 1.2)
            sessions[node.name] = session
        return sessions

    def test_full_hierarchy(self):
        hierarchy = build_hierarchy()
        ws = elicit_weight_system(hierarchy, self.build_sessions(hierarchy))
        averages = ws.attribute_averages()
        assert sum(averages.values()) == pytest.approx(1.0)

    def test_missing_session(self):
        hierarchy = build_hierarchy()
        sessions = self.build_sessions(hierarchy)
        del sessions["Reliability"]
        with pytest.raises(ValueError):
            elicit_weight_system(hierarchy, sessions)

    def test_wrong_sibling_set(self):
        hierarchy = build_hierarchy()
        sessions = self.build_sessions(hierarchy)
        bad = WeightElicitation(["x", "y"], reference="x")
        bad.compare("y", 1.0)
        sessions["Reuse Cost"] = bad
        with pytest.raises(ValueError):
            elicit_weight_system(hierarchy, sessions)
