"""The sharded runtime's member-roster path and its index round-trip."""

import json

import pytest

from repro.core import workspace
from repro.core.engine import GroupResult
from repro.core.group import (
    GroupDecision,
    members_digest,
    members_from_spec,
    parse_members_document,
)
from repro.core.index import RegistryIndex, eval_config_hash
from repro.core.runtime import BatchOptions, ShardedRunner

from ..conftest import make_small_problem


def write_registry(tmp_path, n=6):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(str(path))
    return paths


def make_spec(n_members=3):
    members = []
    for k in range(n_members):
        local = {}
        for i, node in enumerate(
            ("cost", "quality", "battery life", "vendor support")
        ):
            factor = 1.0 + 0.2 * ((k + i) % 3)
            local[node] = [0.8 * factor, 1.2 * factor]
        members.append({"name": f"dm-{k}", "local": local})
    return parse_members_document(
        {"format": "repro-members/1", "members": members}
    )


@pytest.fixture()
def registry(tmp_path):
    return write_registry(tmp_path)


@pytest.fixture()
def spec():
    return make_spec()


class TestGroupRuns:
    def test_every_result_carries_group_json(self, registry, spec):
        report = ShardedRunner(
            workers=1, options=BatchOptions(group=spec)
        ).run(registry)
        assert len(report.results) == len(registry)
        assert all(r.group_json for r in report.results)

    def test_identical_across_worker_counts(self, registry, spec):
        options = BatchOptions(group=spec)
        single = ShardedRunner(workers=1, options=options).run(registry)
        sharded = ShardedRunner(
            workers=2, chunk_size=2, options=options
        ).run(registry)
        assert single.results == sharded.results

    def test_matches_group_decision_exactly(self, registry, spec):
        report = ShardedRunner(
            workers=1, options=BatchOptions(group=spec)
        ).run(registry)
        for result in report.results:
            problem = workspace.load(result.path)
            expected = GroupDecision(
                problem, members_from_spec(spec, problem.hierarchy)
            ).result()
            assert (
                GroupResult.from_payload(json.loads(result.group_json))
                == expected
            )

    def test_group_conflicts_with_objectives(self, registry, spec):
        runner = ShardedRunner(
            workers=1, options=BatchOptions(group=spec, objectives=True)
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            runner.run(registry)

    def test_mismatching_workspace_is_skipped(self, tmp_path, registry, spec):
        from repro.casestudy.problem import multimedia_problem

        alien = tmp_path / "alien.json"
        workspace.save(multimedia_problem(), alien)
        report = ShardedRunner(
            workers=1, options=BatchOptions(group=spec)
        ).run(registry + [str(alien)])
        assert len(report.results) == len(registry)
        assert len(report.skipped) == 1
        assert report.skipped[0].path == str(alien)

    def test_group_rides_with_monte_carlo(self, registry, spec):
        report = ShardedRunner(
            workers=1,
            options=BatchOptions(group=spec, simulations=64, seed=7),
        ).run(registry)
        assert all(
            r.group_json and r.ever_best is not None for r in report.results
        )


class TestGroupConfigHash:
    def test_group_key_absent_without_roster(self):
        assert eval_config_hash(BatchOptions()) == eval_config_hash(
            BatchOptions(group=None)
        )

    def test_group_changes_hash(self, spec):
        assert eval_config_hash(BatchOptions(group=spec)) != eval_config_hash(
            BatchOptions()
        )

    def test_distinct_rosters_distinct_hashes(self, spec):
        other = make_spec(n_members=4)
        assert members_digest(spec) != members_digest(other)
        assert eval_config_hash(BatchOptions(group=spec)) != eval_config_hash(
            BatchOptions(group=other)
        )


class TestGroupIndexRoundTrip:
    def test_cached_rows_identical_to_fresh(self, tmp_path, registry, spec):
        options = BatchOptions(group=spec)
        with RegistryIndex(tmp_path / "idx.sqlite") as index:
            cold = ShardedRunner(workers=1, options=options).run(
                registry, index=index
            )
            warm = ShardedRunner(workers=1, options=options).run(
                registry, index=index
            )
        assert cold.n_cached == 0
        assert warm.n_cached == len(registry)
        assert cold.results == warm.results

    def test_group_rows_do_not_alias_plain_rows(self, tmp_path, registry, spec):
        with RegistryIndex(tmp_path / "idx.sqlite") as index:
            ShardedRunner(workers=1, options=BatchOptions(group=spec)).run(
                registry, index=index
            )
            plain = ShardedRunner(workers=1, options=BatchOptions()).run(
                registry, index=index
            )
            assert plain.n_cached == 0  # separate configuration keys
            status = index.status()
        assert status["n_group_rows"] == len(registry)
        assert status["n_result_rows"] == 2 * len(registry)

    def test_roster_edit_invalidates_only_group_rows(
        self, tmp_path, registry, spec
    ):
        other = make_spec(n_members=4)
        with RegistryIndex(tmp_path / "idx.sqlite") as index:
            ShardedRunner(workers=1, options=BatchOptions(group=spec)).run(
                registry, index=index
            )
            changed = ShardedRunner(
                workers=1, options=BatchOptions(group=other)
            ).run(registry, index=index)
            again = ShardedRunner(
                workers=1, options=BatchOptions(group=spec)
            ).run(registry, index=index)
        assert changed.n_cached == 0
        assert again.n_cached == len(registry)
