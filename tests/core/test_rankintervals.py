"""Tests for attainable-rank intervals under partial information."""

import numpy as np
import pytest

from repro.core.model import AdditiveModel, evaluate
from repro.core.montecarlo import simulate
from repro.core.rankintervals import RankInterval, rank_intervals

from .test_dominance import flat_problem


class TestRankInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            RankInterval("x", 3, 2)
        with pytest.raises(ValueError):
            RankInterval("x", 0, 2)

    def test_queries(self):
        iv = RankInterval("x", 2, 5)
        assert iv.width == 3
        assert iv.contains(2) and iv.contains(5)
        assert not iv.contains(1)


class TestComputation:
    def test_chain_of_dominance(self):
        problem = flat_problem([(3, 3), (2, 2), (1, 1), (0, 0)])
        model = AdditiveModel(problem)
        intervals = rank_intervals(model)
        assert intervals["alt0"].best == 1 and intervals["alt0"].worst == 1
        assert intervals["alt3"].best == 4 and intervals["alt3"].worst == 4

    def test_incomparable_pair_spans_both_ranks(self):
        problem = flat_problem([(3, 0), (0, 3)])
        intervals = rank_intervals(AdditiveModel(problem))
        for name in ("alt0", "alt1"):
            assert intervals[name].best == 1
            assert intervals[name].worst == 2

    def test_precomputed_matrix_accepted(self):
        problem = flat_problem([(3, 3), (1, 1)])
        model = AdditiveModel(problem)
        from repro.core.dominance import dominance_matrix

        matrix = dominance_matrix(model)
        assert rank_intervals(model, matrix=matrix) == rank_intervals(model)

    def test_matrix_shape_checked(self):
        problem = flat_problem([(3, 3), (1, 1)])
        model = AdditiveModel(problem)
        with pytest.raises(ValueError):
            rank_intervals(model, matrix=np.zeros((3, 3), dtype=bool))


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def intervals(self, case_model):
        return rank_intervals(case_model)

    def test_average_rank_inside_interval(self, intervals, case_problem):
        ev = evaluate(case_problem)
        for name in ev.names_by_rank:
            assert intervals[name].contains(ev.rank_of(name)), name

    def test_monte_carlo_ranks_inside_intervals(self, intervals, case_mc):
        for name in case_mc.names:
            stats = case_mc.statistics_for(name)
            assert intervals[name].best <= stats.minimum, name
            assert stats.maximum <= intervals[name].worst, name

    def test_discarded_candidates_cannot_reach_rank_one(self, intervals):
        for name in ("Kanzaki Music", "Photography Ontology", "MPEG7 Ontology"):
            assert intervals[name].best > 1, name

    def test_survivor_intervals_reach_rank_one_or_wide(self, intervals):
        """Potential optimality is stronger than best == 1 (the rank
        bound ignores the shared-weight coupling), so every potentially
        optimal candidate must have best attainable rank 1."""
        from repro.core.dominance import screen

        # cheap consistency: the best-ranked candidate can always be first
        assert intervals["Media Ontology"].best == 1
