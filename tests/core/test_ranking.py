"""Tests for ranking comparison helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ranking import (
    footrule_distance,
    kendall_tau,
    rank_vector,
    spearman_rho,
    top_k_overlap,
)


class TestRankVector:
    def test_basic(self):
        assert rank_vector(["b", "a"]) == {"b": 1, "a": 2}

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            rank_vector(["a", "a"])


class TestCorrelations:
    def test_identical(self):
        order = ["a", "b", "c", "d"]
        assert kendall_tau(order, order) == pytest.approx(1.0)
        assert spearman_rho(order, order) == pytest.approx(1.0)
        assert footrule_distance(order, order) == 0

    def test_reversed(self):
        order = ["a", "b", "c", "d"]
        assert kendall_tau(order, order[::-1]) == pytest.approx(-1.0)
        assert spearman_rho(order, order[::-1]) == pytest.approx(-1.0)

    def test_single_swap(self):
        tau = kendall_tau(["a", "b", "c"], ["b", "a", "c"])
        assert tau == pytest.approx(1 - 2 * 1 / 3)

    def test_partial_overlap_ignored(self):
        tau = kendall_tau(["a", "b", "c"], ["c", "b", "x"])
        # common items: b, c -> one discordant pair
        assert tau == pytest.approx(-1.0)

    def test_too_few_common(self):
        with pytest.raises(ValueError):
            kendall_tau(["a"], ["a"])


class TestTopK:
    def test_overlap(self):
        assert top_k_overlap(["a", "b", "c"], ["b", "a", "d"], 2) == 2
        assert top_k_overlap(["a", "b", "c"], ["c", "d", "e"], 2) == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_overlap(["a"], ["a"], 0)


@given(st.permutations(["a", "b", "c", "d", "e"]))
def test_tau_bounds_and_symmetry(perm):
    base = ["a", "b", "c", "d", "e"]
    tau = kendall_tau(base, list(perm))
    assert -1.0 <= tau <= 1.0
    assert tau == pytest.approx(kendall_tau(list(perm), base))


@given(st.permutations(["a", "b", "c", "d", "e", "f"]))
def test_footrule_even(perm):
    """The footrule distance is always an even integer."""
    base = ["a", "b", "c", "d", "e", "f"]
    assert footrule_distance(base, list(perm)) % 2 == 0
