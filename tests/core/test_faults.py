"""Tests for seeded fault injection and the crash-tolerant runtime.

Every scenario here drives a *real* failure — worker processes
hard-killed mid-chunk, hung workers, artifact reads raising
``OSError``, the follow loop's poll racing an outage — and asserts the
recovery contract: the final merged results are identical to a clean
run's, byte for byte.
"""

import pytest

from repro.core import faults, workspace
from repro.core.faults import (
    DEFAULT_SEED,
    KILL_EXIT_CODE,
    PLAN_NAMES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    named_plan,
)
from repro.core.index import RegistryIndex
from repro.core.runtime import (
    BatchOptions,
    RetryPolicy,
    ShardedRunner,
    shard_registry,
)

from ..conftest import make_small_problem


def write_registry(tmp_path, n=6):
    tmp_path.mkdir(parents=True, exist_ok=True)
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def chunk_keys(n, workers):
    """The fault-decision keys the runner derives for this fan-out."""
    return [
        f"chunk:{chunk[0]}:{chunk[-1]}"
        for chunk in shard_registry(n, workers)
    ]


def find_seed(predicate, limit=10_000):
    """The first seed whose plan satisfies ``predicate`` (deterministic)."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no satisfying fault seed found")


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = named_plan("worker-kill", seed=7)
        twin = named_plan("worker-kill", seed=7)
        decisions = [plan.decide("worker_kill", f"k{i}") for i in range(64)]
        assert decisions == [
            twin.decide("worker_kill", f"k{i}") for i in range(64)
        ]
        assert any(decisions) and not all(decisions)

    def test_attempts_draw_independently(self):
        plan = FaultPlan("p", 3, (FaultRule("artifact_read", 0.5),))
        draws = {plan.decide("artifact_read", "k", a) for a in range(32)}
        assert draws == {True, False}

    def test_rate_and_unruled_sites_never_strike(self):
        plan = named_plan("worker-kill")
        assert plan.rate("worker_kill") == pytest.approx(0.10)
        assert plan.rate("artifact_read") == 0.0
        assert not any(
            plan.decide("artifact_read", f"k{i}") for i in range(256)
        )

    def test_strike_raises_injected_oserror(self):
        plan = FaultPlan("p", 0, (FaultRule("registry_poll", 1.0),))
        with pytest.raises(InjectedFault) as excinfo:
            plan.strike("registry_poll", "cycle:1")
        assert isinstance(excinfo.value, OSError)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("not-a-site", 0.5)
        with pytest.raises(ValueError):
            FaultRule("worker_kill", 1.5)
        with pytest.raises(ValueError):
            FaultRule("chunk_delay", 0.5, delay=-1.0)

    def test_named_plans(self):
        for name in PLAN_NAMES:
            plan = named_plan(name)
            assert plan.name == name and plan.seed == DEFAULT_SEED
        assert named_plan("none").rules == ()
        assert named_plan("mixed").rate("index_corrupt") == 1.0
        with pytest.raises(ValueError):
            named_plan("nonexistent-plan")
        assert "p=0.10" in named_plan("worker-kill").describe()
        assert named_plan("none").describe() == "no fault rules (clean)"

    def test_install_uninstall_and_context(self):
        plan = named_plan("flaky-artifacts")
        assert faults.active() is None
        with faults.injected(plan) as installed:
            assert installed is plan and faults.active() is plan
        assert faults.active() is None

    def test_kill_exit_code_is_distinctive(self):
        assert KILL_EXIT_CODE == 86


class TestWorkerKillRecovery:
    def test_killed_workers_retry_to_identical_results(self, tmp_path):
        paths = write_registry(tmp_path, n=6)
        keys = chunk_keys(len(paths), workers=2)
        seed = find_seed(
            lambda s: any(
                named_plan("worker-kill", seed=s).decide("worker_kill", k)
                for k in keys
            )
        )
        plan = named_plan("worker-kill", seed=seed)
        clean = ShardedRunner(workers=2, options=BatchOptions()).run(paths)
        faulty = ShardedRunner(
            workers=2,
            options=BatchOptions(faults=plan),
            retry=RetryPolicy(backoff_base=0.001),
        ).run(paths)
        assert faulty.results == clean.results
        assert not faulty.skipped and faulty.n_quarantined == 0
        assert faulty.n_retried >= 1

    def test_completed_chunks_survive_a_pool_break(self, tmp_path):
        # One chunk kills its worker; the chunks that already finished
        # are merged, not re-evaluated — the report stays complete and
        # identical without restarting the whole registry.
        paths = write_registry(tmp_path, n=8)
        keys = chunk_keys(len(paths), workers=2)
        seed = find_seed(
            lambda s: sum(
                named_plan("worker-kill", seed=s).decide("worker_kill", k)
                for k in keys
            )
            == 1
        )
        plan = named_plan("worker-kill", seed=seed)
        clean = ShardedRunner(workers=2, options=BatchOptions()).run(paths)
        faulty = ShardedRunner(
            workers=2,
            options=BatchOptions(faults=plan),
            retry=RetryPolicy(backoff_base=0.001),
        ).run(paths)
        assert faulty.results == clean.results
        assert [r.index for r in faulty.results] == [
            r.index for r in clean.results
        ]


class TestHungWorkerRecovery:
    def test_hung_chunk_times_out_and_retries(self, tmp_path):
        # Two chunks so the pool fan-out (with its timeout loop) runs:
        # a single chunk takes the inline path, which cannot time out.
        paths = write_registry(tmp_path, n=2)
        hung_key, clean_key = chunk_keys(len(paths), workers=2)

        def hangs_once(s):
            plan = FaultPlan(
                "hang", s, (FaultRule("chunk_delay", 0.5, delay=2.0),)
            )
            return (
                plan.decide("chunk_delay", hung_key, 0)
                and not plan.decide("chunk_delay", hung_key, 1)
                and not plan.decide("chunk_delay", clean_key, 0)
            )

        seed = find_seed(hangs_once)
        plan = FaultPlan(
            "hang", seed, (FaultRule("chunk_delay", 0.5, delay=2.0),)
        )
        clean = ShardedRunner(workers=2, options=BatchOptions()).run(paths)
        faulty = ShardedRunner(
            workers=2,
            options=BatchOptions(faults=plan),
            retry=RetryPolicy(chunk_timeout=0.5, backoff_base=0.001),
        ).run(paths)
        assert faulty.results == clean.results
        assert faulty.n_retried >= 1 and faulty.n_quarantined == 0


class TestQuarantine:
    def kill_all_plan(self):
        return FaultPlan("always-kill", 0, (FaultRule("worker_kill", 1.0),))

    def test_persistent_killer_is_quarantined(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        report = ShardedRunner(
            workers=2,
            options=BatchOptions(faults=self.kill_all_plan()),
            retry=RetryPolicy(quarantine_after=2, backoff_base=0.001),
        ).run(paths)
        assert report.results == ()
        assert report.n_quarantined == 2
        assert all("quarantined after" in s.error for s in report.skipped)

    def test_quarantine_persists_and_releases_on_edit(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        db_path = tmp_path / "idx.sqlite"
        with RegistryIndex(db_path) as index:
            broken = ShardedRunner(
                workers=2,
                options=BatchOptions(faults=self.kill_all_plan()),
                retry=RetryPolicy(quarantine_after=2, backoff_base=0.001),
            ).run(paths, index=index)
            assert broken.n_quarantined == 2
            assert len(index.quarantine_map()) == 2

            # a later clean run skips the held workspaces outright
            held = ShardedRunner(workers=1, options=BatchOptions()).run(
                paths, index=index
            )
            assert held.results == () and held.n_quarantined == 2
            assert all("quarantined" in s.error for s in held.skipped)

            # editing a held file changes its sha: auto-release + evaluate
            edited = workspace.load(paths[0])
            paths[0].write_text(
                paths[0].read_text().replace("ws-00", "ws-00-edited")
            )
            assert edited is not None
            released = ShardedRunner(workers=1, options=BatchOptions()).run(
                paths, index=index
            )
            assert [r.name for r in released.results] == ["ws-00-edited"]
            assert released.n_quarantined == 1
            assert len(index.quarantine_map()) == 1

    def test_release_quarantine_api(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        with RegistryIndex(tmp_path / "idx.sqlite") as index:
            index.record_quarantine(
                (str(p), 5, "poison") for p in paths
            )
            assert len(index.quarantine_map()) == 2
            assert index.release_quarantine([str(paths[0])]) == 1
            assert set(index.quarantine_map()) == {str(paths[1])}
            assert index.release_quarantine() == 1
            assert index.quarantine_map() == {}


class TestWatchPollResilience:
    def make_index(self, tmp_path):
        return RegistryIndex(tmp_path / "watch.sqlite")

    def test_transient_poll_oserror_is_absorbed(self, tmp_path, capsys):
        paths = write_registry(tmp_path / "reg", n=2)

        def strikes_second_cycle(s):
            plan = FaultPlan(
                "poll", s, (FaultRule("registry_poll", 0.5),)
            )
            return (
                not plan.decide("registry_poll", "cycle:1", 0)
                and plan.decide("registry_poll", "cycle:2", 0)
                and not plan.decide("registry_poll", "cycle:2", 1)
            )

        seed = find_seed(strikes_second_cycle)
        plan = FaultPlan("poll", seed, (FaultRule("registry_poll", 0.5),))
        runner = ShardedRunner(workers=1, options=BatchOptions(faults=plan))
        with self.make_index(tmp_path) as index:
            cycles = runner.watch(
                tmp_path / "reg", index, interval=0.01, max_cycles=2
            )
        assert len(cycles) == 2
        assert [len(c.report.results) for c in cycles] == [2, 2]
        err = capsys.readouterr().err
        assert "transient" in err and "retry 1/" in err

    def test_persistent_poll_failure_propagates(self, tmp_path):
        write_registry(tmp_path / "reg", n=1)
        plan = FaultPlan("poll", 0, (FaultRule("registry_poll", 1.0),))
        runner = ShardedRunner(workers=1, options=BatchOptions(faults=plan))
        with self.make_index(tmp_path) as index:
            with pytest.raises(InjectedFault):
                runner.watch(
                    tmp_path / "reg",
                    index,
                    interval=0.001,
                    max_cycles=3,
                    max_poll_failures=2,
                )


class TestArtifactFaults:
    def test_failing_artifact_reads_recompile_identically(self, tmp_path):
        paths = write_registry(tmp_path, n=4)
        clean = ShardedRunner(workers=2, options=BatchOptions()).run(paths)
        plan = FaultPlan(
            "all-artifacts", 0, (FaultRule("artifact_read", 1.0),)
        )
        faulty = ShardedRunner(
            workers=2, options=BatchOptions(faults=plan)
        ).run(paths)
        assert faulty.results == clean.results
        assert not faulty.skipped
