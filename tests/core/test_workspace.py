"""Tests for GMAA-style workspace persistence (JSON round trips)."""

import json

import pytest

from repro.core.model import evaluate
from repro.core.scales import MISSING
from repro.core.workspace import FORMAT, from_dict, load, save, to_dict

from ..conftest import make_small_problem


class TestRoundTrip:
    def test_small_problem(self, tmp_path):
        problem = make_small_problem(missing_cell=True)
        path = tmp_path / "ws.json"
        save(problem, path)
        restored = load(path)
        assert restored.name == problem.name
        assert restored.attribute_names == problem.attribute_names
        assert restored.alternative_names == problem.alternative_names
        assert restored.table["mid"].is_missing("support")
        assert (
            evaluate(restored).names_by_rank == evaluate(problem).names_by_rank
        )
        for row_a, row_b in zip(evaluate(restored), evaluate(problem)):
            assert row_a.average == pytest.approx(row_b.average)
            assert row_a.minimum == pytest.approx(row_b.minimum)
            assert row_a.maximum == pytest.approx(row_b.maximum)

    def test_case_study(self, tmp_path, case_problem):
        path = tmp_path / "multimedia.json"
        save(case_problem, path)
        restored = load(path)
        assert evaluate(restored).names_by_rank == evaluate(case_problem).names_by_rank
        weights_a = case_problem.weights.attribute_averages()
        weights_b = restored.weights.attribute_averages()
        for attr, value in weights_a.items():
            assert weights_b[attr] == pytest.approx(value)

    def test_dict_round_trip_is_stable(self, case_problem):
        once = to_dict(case_problem)
        twice = to_dict(from_dict(once))
        assert json.dumps(once, sort_keys=True) == json.dumps(twice, sort_keys=True)


class TestFormatGuards:
    def test_version_checked(self, case_problem):
        data = to_dict(case_problem)
        data["format"] = "repro-workspace/99"
        with pytest.raises(ValueError):
            from_dict(data)

    def test_format_field_present(self, case_problem):
        assert to_dict(case_problem)["format"] == FORMAT

    def test_unknown_scale_kind(self, case_problem):
        data = to_dict(case_problem)
        first = next(iter(data["scales"]))
        data["scales"][first]["kind"] = "fuzzy"
        with pytest.raises(ValueError):
            from_dict(data)

    def test_unknown_performance_kind(self, case_problem):
        data = to_dict(case_problem)
        data["alternatives"][0]["performances"]["financial_cost"] = {"kind": "spooky"}
        with pytest.raises(ValueError):
            from_dict(data)

    def test_unknown_utility_kind(self, case_problem):
        data = to_dict(case_problem)
        data["utilities"]["financial_cost"]["kind"] = "cubic"
        with pytest.raises(ValueError):
            from_dict(data)


class TestEncoding:
    def test_missing_encodes_explicitly(self, case_problem):
        data = to_dict(case_problem)
        boemie = next(
            a for a in data["alternatives"] if a["name"] == "Boemie VDO"
        )
        assert boemie["performances"]["purpose_reliability"] == {"kind": "missing"}

    def test_weights_cover_all_non_root_nodes(self, case_problem):
        data = to_dict(case_problem)
        n_nodes = len(case_problem.hierarchy.nodes()) - 1
        assert len(data["weights"]) == n_nodes
