"""Tests for group decision support."""

import pytest

from repro.core.group import (
    GroupDecision,
    GroupMember,
    aggregate_weights,
    borda_ranking,
    disagreement,
)
from repro.core.interval import Interval
from repro.core.weights import WeightSystem

from ..conftest import make_small_problem


def member(name, cost_iv, quality_iv, battery_iv, support_iv, hierarchy):
    return GroupMember(
        name,
        WeightSystem(
            hierarchy,
            {
                "cost": cost_iv,
                "quality": quality_iv,
                "battery life": battery_iv,
                "vendor support": support_iv,
            },
        ),
    )


@pytest.fixture()
def members():
    problem = make_small_problem()
    h = problem.hierarchy
    alice = member("alice", Interval(0.3, 0.5), Interval(0.5, 0.7),
                   Interval(0.4, 0.6), Interval(0.4, 0.6), h)
    bob = member("bob", Interval(0.4, 0.6), Interval(0.4, 0.6),
                 Interval(0.3, 0.7), Interval(0.3, 0.7), h)
    return problem, [alice, bob]


class TestAggregation:
    def test_intersection(self, members):
        _, group = members
        ws = aggregate_weights(group, "intersection")
        iv = ws.local_interval("cost")
        assert iv.lower >= 0.4 - 1e-9 and iv.upper <= 0.5 + 1e-9

    def test_hull(self, members):
        _, group = members
        ws = aggregate_weights(group, "hull")
        iv = ws.local_interval("cost")
        assert iv.lower <= 0.3 + 1e-9 and iv.upper >= 0.6 - 1e-9

    def test_disjoint_views_fail_intersection(self, members):
        problem, group = members
        h = problem.hierarchy
        carol = member("carol", Interval(0.9, 0.95), Interval(0.05, 0.1),
                       Interval(0.4, 0.6), Interval(0.4, 0.6), h)
        with pytest.raises(ValueError):
            aggregate_weights(group + [carol], "intersection")

    def test_unknown_method(self, members):
        _, group = members
        with pytest.raises(ValueError):
            aggregate_weights(group, "average")

    def test_mismatched_hierarchies(self, members):
        problem, group = members
        from repro.core.hierarchy import Hierarchy, ObjectiveNode

        h2 = Hierarchy(
            ObjectiveNode(
                "different",
                children=[
                    ObjectiveNode("only", attribute="x"),
                    ObjectiveNode("two", attribute="y"),
                ],
            )
        )
        stranger = GroupMember(
            "stranger",
            WeightSystem(
                h2,
                {"only": Interval(0.4, 0.6), "two": Interval(0.4, 0.6)},
            ),
        )
        with pytest.raises(ValueError):
            aggregate_weights(group + [stranger])


class TestDisagreement:
    def test_zero_when_identical(self, members):
        problem, group = members
        clone = GroupMember("clone", group[0].weights)
        scores = disagreement([group[0], clone])
        assert all(v == pytest.approx(0.0) for v in scores.values())

    def test_in_unit_range(self, members):
        _, group = members
        scores = disagreement(group)
        assert all(0.0 <= v <= 1.0 for v in scores.values())


class TestBorda:
    def test_simple_majority(self):
        rankings = [("a", "b", "c"), ("a", "c", "b"), ("b", "a", "c")]
        assert borda_ranking(rankings)[0] == "a"

    def test_tie_broken_by_name(self):
        rankings = [("a", "b"), ("b", "a")]
        assert borda_ranking(rankings) == ("a", "b")

    def test_mismatched_sets(self):
        with pytest.raises(ValueError):
            borda_ranking([("a", "b"), ("a", "c")])

    def test_empty(self):
        with pytest.raises(ValueError):
            borda_ranking([])


class TestGroupDecision:
    def test_member_rankings_and_group(self, members):
        problem, group = members
        gd = GroupDecision(problem, group)
        rankings = gd.member_rankings()
        assert set(rankings) == {"alice", "bob"}
        assert gd.group_ranking("intersection")[0] == "premium"
        # alice weighs quality higher -> premium; bob weighs cost
        # higher -> cheap: genuine disagreement the group machinery
        # must surface rather than hide.
        assert rankings["alice"][0] == "premium"
        assert rankings["bob"][0] == "cheap"

    def test_borda_of_identical_members_is_their_ranking(self, members):
        problem, group = members
        clones = [group[0], GroupMember("clone", group[0].weights)]
        gd = GroupDecision(problem, clones)
        assert gd.borda() == gd.member_ranking("alice")

    def test_unknown_member(self, members):
        problem, group = members
        gd = GroupDecision(problem, group)
        with pytest.raises(KeyError):
            gd.member_ranking("nobody")

    def test_duplicate_member_names(self, members):
        problem, group = members
        with pytest.raises(ValueError):
            GroupDecision(problem, [group[0], group[0]])

    def test_empty_group(self, members):
        problem, _ = members
        with pytest.raises(ValueError):
            GroupDecision(problem, [])


class TestSingleMemberGroup:
    """A group of one: every aggregation collapses to the member."""

    def test_aggregations_equal_member_intervals(self, members):
        _, group = members
        solo = [group[0]]
        for method in ("intersection", "hull"):
            ws = aggregate_weights(solo, method)
            for node in ("cost", "quality", "battery life", "vendor support"):
                assert ws.local_interval(node) == group[0].weights.local_interval(node)

    def test_rankings_and_borda_collapse(self, members):
        problem, group = members
        gd = GroupDecision(problem, [group[0]])
        member_ranking = gd.member_ranking("alice")
        assert gd.borda() == member_ranking
        assert gd.group_ranking("intersection") == member_ranking
        assert gd.group_ranking("hull") == member_ranking

    def test_disagreement_is_zero(self, members):
        _, group = members
        assert all(
            score == 0.0 for score in disagreement([group[0]]).values()
        )

    def test_result_has_consensus(self, members):
        problem, group = members
        result = GroupDecision(problem, [group[0]]).result()
        assert result.consensus is not None
        assert result.disjoint == ()
        assert result.n_members == 1


class TestDisjointFallback:
    """Empty intersections: the documented tolerant-hull fallback."""

    @pytest.fixture()
    def split_group(self, members):
        problem, group = members
        h = problem.hierarchy
        # carol's cost/quality views share no point with the others
        carol = member("carol", Interval(0.9, 0.95), Interval(0.05, 0.1),
                       Interval(0.4, 0.6), Interval(0.4, 0.6), h)
        return problem, group + [carol]

    def test_group_ranking_raises_and_names_node(self, split_group):
        problem, group = split_group
        gd = GroupDecision(problem, group)
        with pytest.raises(ValueError, match="irreconcilably.*cost"):
            gd.group_ranking("intersection")

    def test_result_falls_back_to_tolerant(self, split_group):
        problem, group = split_group
        result = GroupDecision(problem, group).result()
        assert result.consensus is None
        assert set(result.disjoint) == {"cost", "quality"}
        assert result.best == result.tolerant[0]
        assert result.member_rankings  # members still ranked individually

    def test_disjoint_nodes_score_full_disagreement(self, split_group):
        problem, group = split_group
        scores = GroupDecision(problem, group).disagreement()
        assert scores["cost"] == 1.0
        assert scores["quality"] == 1.0

    def test_hull_still_feasible(self, split_group):
        problem, group = split_group
        ranking = GroupDecision(problem, group).group_ranking("hull")
        assert len(ranking) == len(problem.alternative_names)

    def test_payload_round_trips_fallback(self, split_group):
        import json

        from repro.core.engine import GroupResult

        problem, group = split_group
        result = GroupDecision(problem, group).result()
        restored = GroupResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert restored == result
        assert restored.consensus is None


class TestBordaTies:
    def test_full_reversal_ties_break_by_name(self):
        rankings = [("b", "c", "a"), ("a", "c", "b")]
        # a and b tie on points; c holds the middle alone
        assert borda_ranking(rankings) == ("a", "b", "c")

    def test_three_way_tie_is_alphabetical(self):
        rankings = [("a", "b", "c"), ("b", "c", "a"), ("c", "a", "b")]
        assert borda_ranking(rankings) == ("a", "b", "c")

    def test_tensor_borda_matches_on_tied_members(self, members):
        problem, group = members
        clones = [
            GroupMember("x", group[0].weights),
            GroupMember("y", group[0].weights),
        ]
        gd = GroupDecision(problem, clones)
        assert gd.borda() == gd.member_ranking("x")


class TestMemberSpecs:
    """The repro-members/1 document layer."""

    def make_doc(self):
        return {
            "format": "repro-members/1",
            "members": [
                {
                    "name": "alice",
                    "local": {
                        "cost": [0.8, 1.2],
                        "quality": [1.6, 2.4],
                        "battery life": [0.8, 1.2],
                        "vendor support": [0.8, 1.2],
                    },
                },
                {
                    "name": "bob",
                    "local": {
                        "cost": [1.6, 2.4],
                        "quality": [0.8, 1.2],
                        "battery life": [0.8, 1.2],
                        "vendor support": [0.8, 1.2],
                    },
                },
            ],
        }

    def test_parse_load_round_trip(self, tmp_path):
        import json

        from repro.core.group import load_members, parse_members_document

        doc = self.make_doc()
        path = tmp_path / "members.json"
        path.write_text(json.dumps(doc))
        assert load_members(path) == parse_members_document(doc)

    def test_spec_resolves_to_group_members(self, members):
        from repro.core.group import members_from_spec, parse_members_document

        problem, _ = members
        spec = parse_members_document(self.make_doc())
        resolved = members_from_spec(spec, problem.hierarchy)
        assert [m.name for m in resolved] == ["alice", "bob"]
        gd = GroupDecision(problem, resolved)
        assert gd.result().n_members == 2

    def test_digest_stable_under_objective_order(self):
        from repro.core.group import members_digest, parse_members_document

        doc = self.make_doc()
        shuffled = self.make_doc()
        shuffled["members"][0]["local"] = dict(
            reversed(list(shuffled["members"][0]["local"].items()))
        )
        assert members_digest(parse_members_document(doc)) == members_digest(
            parse_members_document(shuffled)
        )

    def test_digest_changes_with_intervals(self):
        from repro.core.group import members_digest, parse_members_document

        doc = self.make_doc()
        other = self.make_doc()
        other["members"][0]["local"]["cost"] = [0.7, 1.3]
        assert members_digest(parse_members_document(doc)) != members_digest(
            parse_members_document(other)
        )

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.update(format="repro-members/2"), "format"),
            (lambda d: d.update(members=[]), "at least one"),
            (lambda d: d["members"].append(d["members"][0]), "duplicate"),
            (
                lambda d: d["members"][0]["local"].update(cost=[0.5]),
                "number pair",
            ),
            (
                lambda d: d["members"][0]["local"].update(cost=[0.9, 0.1]),
                "exceeds",
            ),
            (lambda d: d["members"][0].pop("local"), "local"),
            (lambda d: d["members"][0].update(name=""), "name"),
            (lambda d: d["members"][0].update(extra=1), "unknown field"),
        ],
    )
    def test_invalid_documents_rejected(self, mutate, match):
        from repro.core.group import parse_members_document

        doc = self.make_doc()
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            parse_members_document(doc)

    def test_spec_mismatching_hierarchy_raises(self, members):
        from repro.core.group import members_from_spec, parse_members_document

        problem, _ = members
        doc = self.make_doc()
        for entry in doc["members"]:
            entry["local"]["made up objective"] = [0.8, 1.2]
        with pytest.raises(ValueError):
            members_from_spec(
                parse_members_document(doc), problem.hierarchy
            )

    def test_roster_cache_reuses_structural_twins(self, members):
        from repro.core.group import (
            compiled_roster_for,
            parse_members_document,
        )

        _, _ = members
        spec = parse_members_document(self.make_doc())
        first = make_small_problem(name="one")
        twin = make_small_problem(missing_cell=True, name="two")
        assert compiled_roster_for(spec, first.hierarchy) is compiled_roster_for(
            spec, twin.hierarchy
        )
