"""Tests for group decision support."""

import pytest

from repro.core.group import (
    GroupDecision,
    GroupMember,
    aggregate_weights,
    borda_ranking,
    disagreement,
)
from repro.core.interval import Interval
from repro.core.weights import WeightSystem

from ..conftest import make_small_problem


def member(name, cost_iv, quality_iv, battery_iv, support_iv, hierarchy):
    return GroupMember(
        name,
        WeightSystem(
            hierarchy,
            {
                "cost": cost_iv,
                "quality": quality_iv,
                "battery life": battery_iv,
                "vendor support": support_iv,
            },
        ),
    )


@pytest.fixture()
def members():
    problem = make_small_problem()
    h = problem.hierarchy
    alice = member("alice", Interval(0.3, 0.5), Interval(0.5, 0.7),
                   Interval(0.4, 0.6), Interval(0.4, 0.6), h)
    bob = member("bob", Interval(0.4, 0.6), Interval(0.4, 0.6),
                 Interval(0.3, 0.7), Interval(0.3, 0.7), h)
    return problem, [alice, bob]


class TestAggregation:
    def test_intersection(self, members):
        _, group = members
        ws = aggregate_weights(group, "intersection")
        iv = ws.local_interval("cost")
        assert iv.lower >= 0.4 - 1e-9 and iv.upper <= 0.5 + 1e-9

    def test_hull(self, members):
        _, group = members
        ws = aggregate_weights(group, "hull")
        iv = ws.local_interval("cost")
        assert iv.lower <= 0.3 + 1e-9 and iv.upper >= 0.6 - 1e-9

    def test_disjoint_views_fail_intersection(self, members):
        problem, group = members
        h = problem.hierarchy
        carol = member("carol", Interval(0.9, 0.95), Interval(0.05, 0.1),
                       Interval(0.4, 0.6), Interval(0.4, 0.6), h)
        with pytest.raises(ValueError):
            aggregate_weights(group + [carol], "intersection")

    def test_unknown_method(self, members):
        _, group = members
        with pytest.raises(ValueError):
            aggregate_weights(group, "average")

    def test_mismatched_hierarchies(self, members):
        problem, group = members
        other = make_small_problem(name="other")
        import dataclasses

        renamed_root = dataclasses.replace  # keep lint quiet
        from repro.core.hierarchy import Hierarchy, ObjectiveNode

        h2 = Hierarchy(
            ObjectiveNode(
                "different",
                children=[
                    ObjectiveNode("only", attribute="x"),
                    ObjectiveNode("two", attribute="y"),
                ],
            )
        )
        stranger = GroupMember(
            "stranger",
            WeightSystem(
                h2,
                {"only": Interval(0.4, 0.6), "two": Interval(0.4, 0.6)},
            ),
        )
        with pytest.raises(ValueError):
            aggregate_weights(group + [stranger])


class TestDisagreement:
    def test_zero_when_identical(self, members):
        problem, group = members
        clone = GroupMember("clone", group[0].weights)
        scores = disagreement([group[0], clone])
        assert all(v == pytest.approx(0.0) for v in scores.values())

    def test_in_unit_range(self, members):
        _, group = members
        scores = disagreement(group)
        assert all(0.0 <= v <= 1.0 for v in scores.values())


class TestBorda:
    def test_simple_majority(self):
        rankings = [("a", "b", "c"), ("a", "c", "b"), ("b", "a", "c")]
        assert borda_ranking(rankings)[0] == "a"

    def test_tie_broken_by_name(self):
        rankings = [("a", "b"), ("b", "a")]
        assert borda_ranking(rankings) == ("a", "b")

    def test_mismatched_sets(self):
        with pytest.raises(ValueError):
            borda_ranking([("a", "b"), ("a", "c")])

    def test_empty(self):
        with pytest.raises(ValueError):
            borda_ranking([])


class TestGroupDecision:
    def test_member_rankings_and_group(self, members):
        problem, group = members
        gd = GroupDecision(problem, group)
        rankings = gd.member_rankings()
        assert set(rankings) == {"alice", "bob"}
        assert gd.group_ranking("intersection")[0] == "premium"
        # alice weighs quality higher -> premium; bob weighs cost
        # higher -> cheap: genuine disagreement the group machinery
        # must surface rather than hide.
        assert rankings["alice"][0] == "premium"
        assert rankings["bob"][0] == "cheap"

    def test_borda_of_identical_members_is_their_ranking(self, members):
        problem, group = members
        clones = [group[0], GroupMember("clone", group[0].weights)]
        gd = GroupDecision(problem, clones)
        assert gd.borda() == gd.member_ranking("alice")

    def test_unknown_member(self, members):
        problem, group = members
        gd = GroupDecision(problem, group)
        with pytest.raises(KeyError):
            gd.member_ranking("nobody")

    def test_duplicate_member_names(self, members):
        problem, group = members
        with pytest.raises(ValueError):
            GroupDecision(problem, [group[0], group[0]])

    def test_empty_group(self, members):
        problem, _ = members
        with pytest.raises(ValueError):
            GroupDecision(problem, [])
