"""Pinned regressions for degenerate specs the fuzzer surfaced.

Each test nails one failure mode found by ``repro fuzz`` against the
registry generator's degenerate sweep regions: near-degenerate weight
polytopes thinner than the LP solver's feasibility tolerance, single-
alternative problems, all-missing performance rows and zero-width
weight intervals.
"""

import numpy as np
import pytest

from repro.core import genreg
from repro.core.dominance import dominance_matrix, dominates, screen
from repro.core.engine import (
    BatchEvaluator,
    box_simplex_argmin,
    box_simplex_minimum,
    compile_problem,
)
from repro.core.genreg import preset
from repro.core.model import AdditiveModel, evaluate
from repro.core.scales import MISSING


class TestBoxSimplexFallback:
    """The exact greedy LP fallback agrees with scipy where scipy works."""

    def test_matches_scipy_on_healthy_boxes(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(7)
        for _ in range(50):
            n = int(rng.integers(2, 9))
            low = rng.uniform(0.0, 1.0 / n, n)
            up = low + rng.uniform(0.05, 1.0, n)
            # Ensure the box straddles the simplex.
            if low.sum() > 1.0 or up.sum() < 1.0:
                continue
            c = rng.normal(size=n)
            bounds = list(zip(low, up))
            res = linprog(
                c,
                A_eq=np.ones((1, n)),
                b_eq=np.ones(1),
                bounds=bounds,
                method="highs",
            )
            assert res.success
            assert box_simplex_minimum(c, bounds) == pytest.approx(
                float(res.fun), abs=1e-9
            )

    def test_argmin_is_feasible(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(2, 7))
            low = rng.uniform(0.0, 1.0 / n, n)
            up = low + rng.uniform(0.1, 1.0, n)
            if low.sum() > 1.0 or up.sum() < 1.0:
                continue
            w = box_simplex_argmin(rng.normal(size=n), list(zip(low, up)))
            assert w.sum() == pytest.approx(1.0, abs=1e-12)
            assert np.all(w >= low - 1e-12)
            assert np.all(w <= up + 1e-12)

    def test_point_polytope(self):
        # Zero-width box that is exactly on the simplex.
        bounds = [(0.25, 0.25), (0.75, 0.75)]
        c = np.array([3.0, -1.0])
        assert box_simplex_minimum(c, bounds) == pytest.approx(0.0)


class TestNearDegeneratePinned:
    """Fuzz preset seed 0, case 114: 9x16, near-degenerate weights.

    The weight box straddles the simplex by ~2e-7 — mathematically
    feasible but thinner than HiGHS's feasibility tolerance, so the
    dominance LPs report infeasible.  The screening must fall back to
    the exact box-simplex solve instead of raising.
    """

    @pytest.fixture(scope="class")
    def pinned_problem(self):
        spec = preset("fuzz").replace(seed=0, n_workspaces=300)
        return genreg.generate_problem(spec, 114)

    def test_polytope_is_actually_near_degenerate(self, pinned_problem):
        compiled = compile_problem(pinned_problem)
        assert 1.0 - compiled.w_low.sum() < 1e-6
        assert compiled.w_up.sum() - 1.0 < 1e-6

    def test_screen_does_not_crash(self, pinned_problem):
        result = screen(AdditiveModel(pinned_problem))
        assert set(result.survivors) <= set(
            pinned_problem.table.alternative_names
        )

    def test_pairwise_dominates_does_not_crash(self, pinned_problem):
        model = AdditiveModel(pinned_problem)
        names = model.alternative_names
        assert dominates(model, names[0], names[1]) in (True, False)

    def test_batch_matrix_matches_itself_across_solvers(self, pinned_problem):
        model = AdditiveModel(pinned_problem)
        assert np.array_equal(
            dominance_matrix(model, solver="scipy"),
            dominance_matrix(model, solver="simplex"),
        )


class TestSingleAlternative:
    @pytest.fixture(scope="class")
    def single(self):
        spec = preset("degenerate", seed=0, n_workspaces=40).replace(
            alternatives=(1, 1)
        )
        return genreg.generate_problem(spec, 0)

    def test_evaluates(self, single):
        rows = list(evaluate(single))
        assert len(rows) == 1

    def test_dominance_and_ranks(self, single):
        ev = BatchEvaluator(compile_problem(single))
        assert ev.dominance_matrix().shape == (1, 1)
        (interval,) = ev.rank_intervals().values()
        assert (interval.best, interval.worst) == (1, 1)
        result = screen(AdditiveModel(single))
        assert result.survivors == tuple(single.table.alternative_names)

    def test_monte_carlo(self, single):
        ev = BatchEvaluator(compile_problem(single))
        ranks, acceptance = ev.monte_carlo_ranks(
            method="intervals", n_simulations=16, seed=1
        )
        assert np.all(ranks == 1)
        assert acceptance == 1.0


class TestAllMissingRow:
    def test_all_missing_row_evaluates_and_ranks_last_or_ties(self):
        spec = preset("degenerate", seed=0, n_workspaces=60)
        found = False
        for problem in genreg.iter_problems(spec, limit=60):
            rows_missing = [
                all(
                    alt.performance(a) is MISSING
                    for a in problem.table.attribute_names
                )
                for alt in problem.table.alternatives
            ]
            if not any(rows_missing):
                continue
            found = True
            evaluation = evaluate(problem)
            for row in evaluation:
                assert row.minimum <= row.average + 1e-9 <= row.maximum + 2e-9
            screen(AdditiveModel(problem))
        assert found, "degenerate preset should produce an all-missing row"


class TestZeroWidthWeights:
    def test_precise_weights_evaluate_and_screen(self):
        spec = preset("degenerate", seed=3, n_workspaces=20).replace(
            weight_style="precise"
        )
        problem = genreg.generate_problem(spec, 1)
        compiled = compile_problem(problem)
        assert np.array_equal(compiled.w_low, compiled.w_up)
        evaluation = evaluate(problem)
        assert len(list(evaluation)) == len(problem.table.alternatives)
        screen(AdditiveModel(problem))
