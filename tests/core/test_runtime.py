"""Tests for the sharded multi-problem batch runtime."""

import json

import pytest

from repro.core import workspace
from repro.core.engine import BatchEvaluator, compile_problem
from repro.core.runtime import (
    BatchOptions,
    RegistryReport,
    ShardedRunner,
    SkippedWorkspace,
    evaluate_registry_chunk,
    shard_registry,
)

from ..conftest import make_small_problem


def write_registry(tmp_path, n=6, missing_every=2):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % missing_every == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


class TestSharding:
    def test_chunks_cover_registry_in_order(self):
        chunks = shard_registry(10, workers=2)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))

    def test_work_stealing_granularity(self):
        # ~4 chunks per worker, so a slow shard cannot serialise the run
        chunks = shard_registry(100, workers=4)
        assert len(chunks) >= 4 * 4 - 3
        assert max(len(c) for c in chunks) <= 100 // (4 * 4) + 1

    def test_explicit_chunk_size(self):
        chunks = shard_registry(7, workers=2, chunk_size=3)
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_degenerate_inputs(self):
        assert shard_registry(0, workers=2) == []
        with pytest.raises(ValueError):
            shard_registry(3, workers=0)
        with pytest.raises(ValueError):
            shard_registry(3, workers=1, chunk_size=0)
        with pytest.raises(ValueError):
            shard_registry(-1, workers=1)


class TestChunkEvaluation:
    def test_results_match_per_problem_evaluation(self, tmp_path):
        paths = write_registry(tmp_path, n=4)
        chunk = [(i, str(p)) for i, p in enumerate(paths)]
        results, skipped, n_stacks, _ = evaluate_registry_chunk(
            chunk, BatchOptions()
        )
        assert skipped == [] and n_stacks == 1
        assert [r.index for r in results] == [0, 1, 2, 3]
        for result, path in zip(results, paths):
            best = BatchEvaluator(
                compile_problem(workspace.load(path))
            ).evaluate().best
            assert result.best_name == best.name
            assert result.best_average == best.average
            assert result.best_minimum == best.minimum
            assert result.best_maximum == best.maximum

    def test_monte_carlo_columns_match_per_problem(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        chunk = [(i, str(p)) for i, p in enumerate(paths)]
        options = BatchOptions(simulations=200, seed=11)
        results, _, _, _ = evaluate_registry_chunk(chunk, options)
        for result, path in zip(results, paths):
            evaluator = BatchEvaluator(compile_problem(workspace.load(path)))
            mc = evaluator.simulate(
                method="intervals",
                n_simulations=200,
                seed=11,
                sample_utilities="missing",
            )
            assert result.ever_best == len(mc.ever_best())
            assert result.top5_fluctuation == mc.max_fluctuation(
                mc.top_k_by_mean(5)
            )

    def test_objectives_expand_after_each_workspace(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        chunk = [(i, str(p)) for i, p in enumerate(paths)]
        results, _, _, _ = evaluate_registry_chunk(
            chunk, BatchOptions(objectives=True)
        )
        # workspace + its two top-level objectives, per workspace (the
        # chunk returns stack order; the runner's merge sorts by key)
        results = sorted(results, key=lambda r: r.order_key)
        assert [(r.index, r.sub_index) for r in results] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]
        assert results[1].name == "ws-00:cost"
        assert results[2].name == "ws-00:quality"


class TestCorruptWorkspaces:
    def test_corrupt_json_reported_and_skipped(self, tmp_path):
        paths = write_registry(tmp_path, n=3)
        bad = tmp_path / "corrupt.json"
        bad.write_text("{ this is not json")
        wrong = tmp_path / "wrong-format.json"
        wrong.write_text(json.dumps({"format": "other/1"}))
        registry = [paths[0], bad, paths[1], wrong, paths[2]]
        report = ShardedRunner(workers=1).run(registry)
        assert report.n_evaluated == 3
        assert [s.index for s in report.skipped] == [1, 3]
        assert "JSONDecodeError" in report.skipped[0].error
        assert isinstance(report.skipped[1], SkippedWorkspace)
        # the good entries kept their registry indices
        assert [r.index for r in report.results] == [0, 2, 4]

    def test_missing_file_skipped(self, tmp_path):
        paths = write_registry(tmp_path, n=2)
        registry = [paths[0], tmp_path / "nope.json", paths[1]]
        report = ShardedRunner(workers=1).run(registry)
        assert report.n_evaluated == 2
        assert len(report.skipped) == 1
        assert "nope.json" in report.skipped[0].path


class TestDeterministicMerge:
    @pytest.mark.parametrize("simulations", [0, 150])
    def test_identical_across_worker_counts(self, tmp_path, simulations):
        paths = write_registry(tmp_path, n=9)
        reports = {}
        for workers in (1, 2, 3):
            runner = ShardedRunner(
                workers=workers,
                options=BatchOptions(simulations=simulations, seed=7),
            )
            reports[workers] = runner.run(paths)
        assert reports[1].results == reports[2].results == reports[3].results
        assert isinstance(reports[2], RegistryReport)

    def test_identical_across_chunk_sizes(self, tmp_path):
        paths = write_registry(tmp_path, n=8)
        a = ShardedRunner(workers=1, chunk_size=1).run(paths)
        b = ShardedRunner(workers=1, chunk_size=8).run(paths)
        assert a.results == b.results

    def test_mixed_shapes_merge_in_registry_order(self, tmp_path):
        from repro.casestudy.problem import multimedia_problem

        small = write_registry(tmp_path, n=2)
        big = tmp_path / "mm.json"
        workspace.save(multimedia_problem(), big)
        registry = [small[0], big, small[1]]
        report = ShardedRunner(workers=1, chunk_size=3).run(registry)
        assert [r.index for r in report.results] == [0, 1, 2]
        assert report.results[1].name == "Multimedia"
        assert report.n_stacks == 2

    def test_with_options_copies_pool_shape(self):
        runner = ShardedRunner(workers=3, chunk_size=5)
        tweaked = runner.with_options(simulations=10)
        assert tweaked.workers == 3
        assert tweaked.chunk_size == 5
        assert tweaked.options.simulations == 10

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ShardedRunner(workers=0)
