"""Tests for the hierarchical weight system and elicitation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hierarchy import Hierarchy, ObjectiveNode
from repro.core.interval import Interval
from repro.core.weights import (
    WeightSystem,
    equal_weights,
    rank_order_centroid,
    rank_sum_weights,
    swing_weights,
    tradeoff_intervals,
)


def hier() -> Hierarchy:
    return Hierarchy(
        ObjectiveNode(
            "root",
            children=[
                ObjectiveNode("a", attribute="x"),
                ObjectiveNode(
                    "b",
                    children=[
                        ObjectiveNode("b1", attribute="y"),
                        ObjectiveNode("b2", attribute="z"),
                    ],
                ),
            ],
        )
    )


def system() -> WeightSystem:
    return WeightSystem(
        hier(),
        {
            "a": Interval(0.3, 0.5),
            "b": Interval(0.5, 0.7),
            "b1": Interval(0.2, 0.6),
            "b2": Interval(0.4, 0.8),
        },
    )


class TestValidation:
    def test_missing_node(self):
        with pytest.raises(ValueError):
            WeightSystem(hier(), {"a": Interval(0.5, 0.5), "b": Interval(0.5, 0.5),
                                  "b1": Interval(0.5, 0.5)})

    def test_unknown_node(self):
        with pytest.raises(ValueError):
            WeightSystem(
                hier(),
                {"a": Interval(0.5, 0.5), "b": Interval(0.5, 0.5),
                 "b1": Interval(0.5, 0.5), "b2": Interval(0.5, 0.5),
                 "ghost": Interval(0.1, 0.2)},
            )

    def test_box_must_straddle_simplex(self):
        with pytest.raises(ValueError):
            WeightSystem(
                hier(),
                {"a": Interval(0.1, 0.2), "b": Interval(0.1, 0.2),
                 "b1": Interval(0.5, 0.5), "b2": Interval(0.5, 0.5)},
            )

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            WeightSystem(
                hier(),
                {"a": Interval(-0.2, 0.5), "b": Interval(0.5, 1.2),
                 "b1": Interval(0.5, 0.5), "b2": Interval(0.5, 0.5)},
            )


class TestAverages:
    def test_local_averages_sum_to_one_per_group(self):
        ws = system()
        assert ws.local_average("a") + ws.local_average("b") == pytest.approx(1.0)
        assert ws.local_average("b1") + ws.local_average("b2") == pytest.approx(1.0)

    def test_attribute_averages_sum_to_one(self):
        totals = sum(system().attribute_averages().values())
        assert totals == pytest.approx(1.0)

    def test_path_multiplication(self):
        ws = system()
        expected = ws.local_average("b") * ws.local_average("b1")
        assert ws.attribute_weight_average("y") == pytest.approx(expected)

    def test_interval_multiplication(self):
        ws = system()
        iv = ws.attribute_weight_interval("y")
        assert iv.lower == pytest.approx(0.5 * 0.2)
        assert iv.upper == pytest.approx(0.7 * 0.6)

    def test_root_weight_is_one(self):
        ws = system()
        assert ws.local_interval("root") == Interval.point(1.0)
        assert ws.node_weight_average("root") == pytest.approx(1.0)


class TestConstructors:
    def test_uniform(self):
        ws = WeightSystem.uniform(hier())
        assert ws.local_average("a") == pytest.approx(0.5)
        assert ws.attribute_weight_average("y") == pytest.approx(0.25)

    def test_precise(self):
        ws = WeightSystem.precise(hier(), {"a": 1.0, "b": 3.0, "b1": 1.0, "b2": 1.0})
        assert ws.local_average("b") == pytest.approx(0.75)
        assert ws.local_interval("b").is_point

    def test_from_raw_intervals_rescales(self):
        ws = WeightSystem.from_raw_intervals(
            hier(),
            {"a": Interval(1.0, 2.0), "b": Interval(2.0, 4.0),
             "b1": Interval(1.0, 1.0), "b2": Interval(1.0, 3.0)},
        )
        group = ws.local_interval("a").midpoint + ws.local_interval("b").midpoint
        assert group == pytest.approx(1.0)


class TestViews:
    def test_for_subtree(self):
        sub = system().for_subtree("b")
        assert sub.hierarchy.root.name == "b"
        assert sub.attribute_averages()["y"] + sub.attribute_averages()["z"] == pytest.approx(1.0)

    def test_replace_local(self):
        ws = system().replace_local("a", Interval(0.4, 0.4))
        assert ws.local_interval("a").is_point
        with pytest.raises(ValueError):
            system().replace_local("root", Interval(0.4, 0.4))
        with pytest.raises(KeyError):
            system().replace_local("nope", Interval(0.4, 0.4))

    def test_as_precise_averages(self):
        precise = system().as_precise_averages()
        for name in ("a", "b", "b1", "b2"):
            assert precise.local_interval(name).is_point
        assert sum(precise.attribute_averages().values()) == pytest.approx(1.0)


class TestSurrogateWeights:
    @pytest.mark.parametrize("fn", [rank_order_centroid, rank_sum_weights, equal_weights])
    def test_sum_to_one_and_decrease(self, fn):
        w = fn(6)
        assert sum(w) == pytest.approx(1.0)
        assert all(a >= b - 1e-12 for a, b in zip(w, w[1:]))

    def test_roc_known_values(self):
        w = rank_order_centroid(3)
        assert w[0] == pytest.approx((1 + 1 / 2 + 1 / 3) / 3)
        assert w[2] == pytest.approx((1 / 3) / 3)

    def test_swing(self):
        assert swing_weights([100, 50, 50]) == pytest.approx((0.5, 0.25, 0.25))
        with pytest.raises(ValueError):
            swing_weights([])
        with pytest.raises(ValueError):
            swing_weights([0, 0])
        with pytest.raises(ValueError):
            swing_weights([-1, 2])

    def test_invalid_n(self):
        for fn in (rank_order_centroid, rank_sum_weights, equal_weights):
            with pytest.raises(ValueError):
                fn(0)

    def test_tradeoff_intervals(self):
        raw = tradeoff_intervals("a", {"b": Interval(2.0, 3.0)})
        assert raw["a"] == Interval.point(1.0)
        assert raw["b"] == Interval(2.0, 3.0)
        with pytest.raises(ValueError):
            tradeoff_intervals("a", {"b": Interval(-1.0, 1.0)})


@given(st.integers(min_value=1, max_value=30))
def test_roc_majorises_rank_sum(n):
    """ROC concentrates more weight on the top rank than rank-sum."""
    roc, rs = rank_order_centroid(n), rank_sum_weights(n)
    assert roc[0] >= rs[0] - 1e-12
