"""Graceful degradation: circuit breaker, stale reads, degraded health.

The service must keep *serving* through evaluation failure storms and
registry-index outages: evaluations are refused fast (503 +
``Retry-After``) once the circuit opens, index-down reads replay the
last known-good body with ``Warning: 110``, and ``/healthz`` reports
``degraded`` while staying HTTP 200 so load balancers don't eject a
still-useful instance.
"""

import json
import sqlite3

import pytest

from repro.core import workspace
from repro.service.app import ServiceApp, _CircuitBreaker

from ..conftest import make_small_problem


def write_registry(tmp_path, n=3):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


@pytest.fixture()
def registry(tmp_path):
    return write_registry(tmp_path)


@pytest.fixture()
def app(tmp_path, registry):
    with ServiceApp(tmp_path) as service_app:
        yield service_app


def get(app, target, **headers):
    return app.handle("GET", target, headers)


def body(response):
    return json.loads(response.body)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=30.0):
        clock = FakeClock()
        return _CircuitBreaker(threshold, cooldown, clock=clock), clock

    def test_closed_lets_everything_through(self):
        breaker, _ = self.make()
        assert all(breaker.acquire() is None for _ in range(10))
        assert breaker.state == "closed"

    def test_opens_after_consecutive_failures_only(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_open_refuses_with_remaining_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        assert breaker.acquire() == 30
        clock.advance(12.0)
        assert breaker.acquire() == 18
        # never advertises less than a whole second
        clock.advance(17.5)
        assert breaker.acquire() == 1

    def test_half_open_admits_a_single_probe(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.acquire() is None  # the probe
        assert breaker.state == "half-open"
        assert breaker.acquire() is not None  # everyone else waits

    def test_probe_success_closes_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=2, cooldown=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.acquire() is None
        breaker.record_failure()  # single half-open failure re-opens
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.acquire() is None
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.acquire() is None

    def test_aborted_probe_frees_the_slot(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.acquire() is None
        breaker.abort_probe()  # probe died without a verdict
        assert breaker.acquire() is None  # next caller may probe
        assert breaker.state == "half-open"

    def test_snapshot_shape(self):
        breaker, _ = self.make(threshold=3, cooldown=7.0)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {
            "state": "closed",
            "consecutive_failures": 1,
            "threshold": 3,
            "cooldown_seconds": 7.0,
        }


class _ExplodingRunner:
    def __init__(self, *args, **kwargs):
        pass

    def run(self, *args, **kwargs):
        raise RuntimeError("evaluator crashed")


class TestEvaluationFailures:
    def test_failure_maps_to_503_with_retry_after(self, app, monkeypatch):
        monkeypatch.setattr(
            "repro.service.app.ShardedRunner", _ExplodingRunner
        )
        response = get(app, "/v1/workspaces/ws-00/ranking")
        assert response.status == 503
        assert response.headers["Retry-After"] == "1"
        assert "evaluation failed" in body(response)["error"]["message"]
        assert app.breaker.snapshot()["consecutive_failures"] == 1

    def test_breaker_opens_then_cools_down_and_recovers(
        self, app, monkeypatch
    ):
        clock = FakeClock()
        app.breaker = _CircuitBreaker(
            threshold=2, cooldown=30.0, clock=clock
        )
        monkeypatch.setattr(
            "repro.service.app.ShardedRunner", _ExplodingRunner
        )
        for _ in range(2):
            assert get(app, "/v1/workspaces/ws-00/ranking").status == 503
        assert app.breaker.state == "open"

        # open circuit: refused fast, no evaluation attempted
        refused = get(app, "/v1/workspaces/ws-00/ranking")
        assert refused.status == 503
        assert "circuit open" in body(refused)["error"]["message"]
        assert int(refused.headers["Retry-After"]) >= 1

        # cooldown over + machinery repaired: the probe closes it
        monkeypatch.undo()
        clock.advance(30.0)
        recovered = get(app, "/v1/workspaces/ws-00/ranking")
        assert recovered.status == 200
        assert app.breaker.state == "closed"

    def test_content_409_does_not_trip_the_breaker(self, app, registry):
        torn = registry[0].read_text()
        registry[0].write_text(torn[: len(torn) // 2])
        workspace.compiled_array_path(registry[0]).unlink(missing_ok=True)
        response = get(app, "/v1/workspaces/ws-00/ranking")
        assert response.status in (409, 422)
        assert app.breaker.state == "closed"
        assert app.breaker.snapshot()["consecutive_failures"] == 0


def _kill_index(app, monkeypatch):
    """Make every index read raise, as a crashed/corrupted sqlite would."""

    def explode(*args, **kwargs):
        raise sqlite3.OperationalError("database disk image is malformed")

    for name in ("probe_with_status", "probe", "ping", "lookup_results"):
        monkeypatch.setattr(app.index, name, explode)


class TestStaleServing:
    def test_primed_endpoint_serves_stale_with_warning(
        self, app, monkeypatch
    ):
        fresh = get(app, "/v1/workspaces/ws-01/ranking")
        assert fresh.status == 200

        _kill_index(app, monkeypatch)
        stale = get(app, "/v1/workspaces/ws-01/ranking")
        assert stale.status == 200
        assert stale.body == fresh.body
        assert stale.headers["X-Cache"] == "stale"
        assert stale.headers["Warning"] == '110 - "Response is Stale"'
        assert stale.headers["ETag"] == fresh.headers["ETag"]

    def test_unprimed_endpoint_degrades_to_503(self, app, monkeypatch):
        _kill_index(app, monkeypatch)
        response = get(app, "/v1/workspaces/ws-02/ranking")
        assert response.status == 503
        assert response.headers["Retry-After"] == "5"
        assert "index unavailable" in body(response)["error"]["message"]

    def test_stale_body_tracks_the_latest_good_answer(
        self, app, registry, monkeypatch
    ):
        first = get(app, "/v1/workspaces/ws-01/ranking")
        # edit the workspace: the next healthy read re-evaluates ...
        text = registry[1].read_text()
        registry[1].write_text(text.replace("ws-01", "ws-01-edited"))
        second = get(app, "/v1/workspaces/ws-01/ranking")
        assert second.status == 200 and second.body != first.body
        # ... and the stale fallback replays the *new* body
        _kill_index(app, monkeypatch)
        stale = get(app, "/v1/workspaces/ws-01/ranking")
        assert stale.body == second.body


class TestDegradedHealthz:
    def test_index_outage_reports_degraded_but_200(self, app, monkeypatch):
        _kill_index(app, monkeypatch)
        response = get(app, "/healthz")
        assert response.status == 200
        payload = body(response)
        assert payload["status"] == "degraded"
        assert payload["index_available"] is False
        assert "malformed" in payload["index_error"]

    def test_open_breaker_reports_degraded(self, app):
        for _ in range(app.breaker.snapshot()["threshold"]):
            app.breaker.record_failure()
        payload = body(get(app, "/healthz"))
        assert payload["status"] == "degraded"
        assert payload["index_available"] is True
        assert payload["circuit_breaker"]["state"] == "open"
