"""Tests for the query service route table (no socket involved)."""

import json

import pytest

from repro.core import workspace
from repro.core.engine import BatchEvaluator, compile_problem
from repro.core.index import RegistryIndex, eval_config_hash
from repro.core.runtime import BatchOptions, ShardedRunner
from repro.service.app import ServiceApp
from repro.service.cache import if_none_match_matches, make_etag

from ..conftest import make_small_problem


def write_registry(tmp_path, n=4):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


@pytest.fixture()
def registry(tmp_path):
    return write_registry(tmp_path)


@pytest.fixture()
def app(tmp_path, registry):
    with ServiceApp(tmp_path) as service_app:
        yield service_app


def get(app, target, **headers):
    return app.handle("GET", target, headers)


def body(response):
    return json.loads(response.body)


class TestRouting:
    def test_unknown_endpoint_404(self, app):
        assert get(app, "/nope").status == 404
        assert get(app, "/v1/workspaces/ws-00/unknown-verb").status == 404
        assert get(app, "/v1/workspaces").status == 404

    def test_wrong_method_405(self, app):
        assert app.handle("POST", "/healthz").status == 405
        assert app.handle("POST", "/v1/workspaces/ws-00/ranking").status == 405
        assert get(app, "/v1/evaluate").status == 405

    def test_healthz(self, app, tmp_path):
        response = get(app, "/healthz")
        assert response.status == 200
        payload = body(response)
        assert payload["status"] == "ok"
        assert payload["registry"] == str(tmp_path.resolve())

    def test_error_bodies_are_json_envelopes(self, app):
        payload = body(get(app, "/nope"))
        assert payload["error"]["code"] == "not_found"
        assert "unknown endpoint" in payload["error"]["message"]
        assert payload["error"]["detail"] is None


class TestRanking:
    def test_matches_engine_bit_exactly(self, app, registry):
        response = get(app, "/v1/workspaces/ws-01/ranking")
        assert response.status == 200
        evaluator = BatchEvaluator(
            compile_problem(workspace.load(registry[1]))
        )
        best = evaluator.evaluate().best
        row = body(response)["results"][0]
        assert row["best"]["name"] == best.name
        assert row["best"]["minimum"] == best.minimum
        assert row["best"]["average"] == best.average
        assert row["best"]["maximum"] == best.maximum

    def test_miss_index_hit_and_lru_hit_serve_identical_bytes(self, app):
        first = get(app, "/v1/workspaces/ws-00/ranking")
        assert first.headers["X-Cache"] == "miss"
        app.cache.clear()  # force the next build to come from the index
        second = get(app, "/v1/workspaces/ws-00/ranking")
        assert second.headers["X-Cache"] == "miss"
        third = get(app, "/v1/workspaces/ws-00/ranking")
        assert third.headers["X-Cache"] == "hit"
        assert first.body == second.body == third.body

    def test_read_through_miss_matches_batch_runner_bytes(
        self, tmp_path, registry
    ):
        # evaluate via the batch path first, against a separate index db:
        # the reference numbers the service must reproduce byte-for-byte
        report = ShardedRunner(workers=1).run([str(registry[2])])
        reference = report.results[0]
        with ServiceApp(tmp_path) as app:
            row = body(get(app, "/v1/workspaces/ws-02/ranking"))["results"][0]
        assert row["name"] == reference.name
        assert row["best"]["minimum"] == reference.best_minimum
        assert row["best"]["average"] == reference.best_average
        assert row["best"]["maximum"] == reference.best_maximum

    def test_index_hit_serves_batch_cached_floats(self, tmp_path, registry):
        # warm the shared index through the batch path, then serve:
        # the service's first answer is already an index hit
        db = tmp_path / ".repro-index.sqlite"
        with RegistryIndex(db) as index:
            report = ShardedRunner(workers=1).run(
                [str(p) for p in registry], index=index
            )
        with ServiceApp(tmp_path) as app:
            row = body(get(app, "/v1/workspaces/ws-03/ranking"))["results"][0]
            n_rows_after = app.index.status()["n_result_rows"]
        reference = report.results[3]
        assert row["best"]["minimum"] == reference.best_minimum
        assert row["best"]["average"] == reference.best_average
        assert row["best"]["maximum"] == reference.best_maximum
        # served, not re-evaluated: no new rows were committed
        assert n_rows_after == len(registry)

    def test_read_through_commits_back_to_the_shared_cache(
        self, app, tmp_path, registry
    ):
        get(app, "/v1/workspaces/ws-00/ranking")
        config_hash = eval_config_hash(BatchOptions())
        record = app.index.probe(registry[0])
        rows = app.index.lookup_results(record.content_hash, config_hash)
        assert rows is not None and rows[0].sub_index == 0
        # a batch run over the same registry now counts it as cached
        report = ShardedRunner(workers=1).run(
            [str(registry[0])], index=app.index
        )
        assert report.n_cached == 1

    def test_rejects_query_parameters(self, app):
        assert get(app, "/v1/workspaces/ws-00/ranking?simulations=5").status \
            == 400


class TestMonteCarlo:
    def test_matches_runner_options_bit_exactly(self, app, registry):
        options = BatchOptions(simulations=300, method="intervals", seed=11)
        reference = ShardedRunner(workers=1, options=options).run(
            [str(registry[1])]
        ).results[0]
        response = get(
            app, "/v1/workspaces/ws-01/montecarlo?simulations=300&seed=11"
        )
        row = body(response)["results"][0]
        assert row["ever_best"] == reference.ever_best
        assert row["top5_fluctuation"] == reference.top5_fluctuation
        assert row["best"]["average"] == reference.best_average

    def test_distinct_configs_get_distinct_cache_entries(self, app):
        a = get(app, "/v1/workspaces/ws-00/montecarlo?simulations=100&seed=1")
        b = get(app, "/v1/workspaces/ws-00/montecarlo?simulations=100&seed=2")
        assert a.status == b.status == 200
        assert a.body != b.body
        assert a.headers["ETag"] != b.headers["ETag"]

    def test_parameter_validation(self, app):
        base = "/v1/workspaces/ws-00/montecarlo"
        assert get(app, base + "?simulations=0").status == 400
        assert get(app, base + "?simulations=abc").status == 400
        assert get(app, base + "?method=bogus").status == 400
        assert get(app, base + "?seed=x").status == 400
        assert get(app, base + "?bogus=1").status == 400


class TestScreening:
    def test_dominance_matches_engine(self, app, registry):
        evaluator = BatchEvaluator(
            compile_problem(workspace.load(registry[0]))
        )
        matrix = evaluator.dominance_matrix()
        payload = body(get(app, "/v1/workspaces/ws-00/dominance"))
        assert payload["alternatives"] == list(evaluator.alternative_names)
        assert payload["matrix"] == [
            [bool(x) for x in row] for row in matrix
        ]
        dominated = matrix.any(axis=0)
        assert payload["non_dominated"] == [
            name
            for name, hit in zip(evaluator.alternative_names, dominated)
            if not hit
        ]

    def test_rankintervals_matches_engine(self, app, registry):
        evaluator = BatchEvaluator(
            compile_problem(workspace.load(registry[1]))
        )
        intervals = evaluator.rank_intervals()
        payload = body(get(app, "/v1/workspaces/ws-01/rankintervals"))
        assert payload["intervals"] == [
            {
                "name": name,
                "best": intervals[name].best,
                "worst": intervals[name].worst,
            }
            for name in evaluator.alternative_names
        ]

    def test_second_request_is_an_lru_hit(self, app):
        first = get(app, "/v1/workspaces/ws-00/dominance")
        second = get(app, "/v1/workspaces/ws-00/dominance")
        assert first.headers["X-Cache"] == "miss"
        assert second.headers["X-Cache"] == "hit"
        assert first.body == second.body


class TestETag:
    def test_if_none_match_revalidates_to_304(self, app):
        first = get(app, "/v1/workspaces/ws-00/ranking")
        etag = first.headers["ETag"]
        revalidated = app.handle(
            "GET",
            "/v1/workspaces/ws-00/ranking",
            {"If-None-Match": etag},
        )
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.headers["ETag"] == etag

    def test_star_and_weak_comparison(self, app):
        etag = get(app, "/v1/workspaces/ws-00/ranking").headers["ETag"]
        for header in ("*", f"W/{etag}", f'"other", {etag}'):
            response = app.handle(
                "GET",
                "/v1/workspaces/ws-00/ranking",
                {"If-None-Match": header},
            )
            assert response.status == 304, header

    def test_semantic_edit_invalidates_the_validator(
        self, app, tmp_path, registry
    ):
        old = get(app, "/v1/workspaces/ws-00/ranking")
        data = json.loads(registry[0].read_text())
        data["name"] = data["name"] + "-edited"
        registry[0].write_text(json.dumps(data, indent=2, sort_keys=True))
        fresh = app.handle(
            "GET",
            "/v1/workspaces/ws-00/ranking",
            {"If-None-Match": old.headers["ETag"]},
        )
        assert fresh.status == 200  # stale validator no longer matches
        assert fresh.headers["ETag"] != old.headers["ETag"]
        assert body(fresh)["results"][0]["name"].endswith("-edited")

    def test_touch_keeps_the_validator(self, app, registry):
        import os

        etag = get(app, "/v1/workspaces/ws-00/ranking").headers["ETag"]
        os.utime(registry[0])  # new stat fingerprint, same bytes
        assert get(app, "/v1/workspaces/ws-00/ranking").headers["ETag"] == etag

    def test_make_etag_and_matching_helpers(self):
        etag = make_etag("ranking", "abc", "def")
        assert etag.startswith('"') and etag.endswith('"')
        assert make_etag("ranking", "abc", "xyz") != etag
        assert if_none_match_matches(etag, etag)
        assert if_none_match_matches("*", etag)
        assert not if_none_match_matches(None, etag)
        assert not if_none_match_matches('"nope"', etag)


class TestErrors:
    def test_unknown_workspace_404(self, app):
        assert get(app, "/v1/workspaces/ghost/ranking").status == 404

    def test_traversal_id_400(self, app):
        response = app.handle(
            "GET", "/v1/workspaces/%2e%2e/secrets/ranking"
        )
        assert response.status == 400

    def test_corrupt_workspace_409(self, app, tmp_path):
        (tmp_path / "corrupt.json").write_text("{not json")
        for verb in ("ranking", "montecarlo", "dominance", "rankintervals"):
            assert get(app, f"/v1/workspaces/corrupt/{verb}").status == 409


class TestEvaluate:
    def post(self, app, payload):
        raw = payload if isinstance(payload, bytes) else json.dumps(
            payload
        ).encode()
        return app.handle("POST", "/v1/evaluate", {}, raw)

    def test_matches_engine_bit_exactly(self, app):
        problem = make_small_problem(name="adhoc")
        response = self.post(app, workspace.to_dict(problem))
        assert response.status == 200
        payload = body(response)
        evaluation = BatchEvaluator(compile_problem(problem)).evaluate()
        assert payload["best"] == evaluation.best.name
        for served, row in zip(payload["ranking"], evaluation):
            assert served["rank"] == row.rank
            assert served["name"] == row.name
            assert served["minimum"] == row.minimum
            assert served["average"] == row.average
            assert served["maximum"] == row.maximum

    def test_envelope_with_monte_carlo(self, app):
        problem = make_small_problem(missing_cell=True, name="adhoc-mc")
        evaluator = BatchEvaluator(compile_problem(problem))
        reference = evaluator.simulate(
            method="intervals",
            n_simulations=150,
            seed=5,
            sample_utilities="missing",
        )
        response = self.post(
            app,
            {
                "workspace": workspace.to_dict(problem),
                "simulations": 150,
                "seed": 5,
            },
        )
        mc = body(response)["montecarlo"]
        assert mc["ever_best"] == list(reference.ever_best())
        assert mc["top5_fluctuation"] == int(
            reference.max_fluctuation(reference.top_k_by_mean(5))
        )

    def test_bad_bodies_400(self, app):
        assert self.post(app, b"{nope").status == 400
        assert self.post(app, [1, 2]).status == 400
        assert self.post(app, {"format": "bogus/9"}).status == 400
        assert self.post(
            app, {"workspace": {"format": "bogus/9"}}
        ).status == 400
        assert self.post(
            app,
            {"workspace": {}, "unexpected": 1},
        ).status == 400
        assert self.post(
            app,
            {"workspace": {}, "simulations": -3},
        ).status == 400
        assert self.post(
            app,
            {"workspace": {}, "method": "bogus"},
        ).status == 400

    def test_nothing_is_persisted(self, app):
        before = app.index.status()["n_result_rows"]
        self.post(app, workspace.to_dict(make_small_problem(name="adhoc")))
        assert app.index.status()["n_result_rows"] == before


class TestRegistryListing:
    def test_lists_every_workspace_with_fingerprints(
        self, app, tmp_path, registry
    ):
        payload = body(get(app, "/v1/registry"))
        assert payload["n_workspaces"] == len(registry)
        ids = [entry["id"] for entry in payload["workspaces"]]
        assert ids == sorted(f"ws-{i:02d}" for i in range(len(registry)))
        entry = payload["workspaces"][0]
        record = app.index.probe(registry[0])
        assert entry["content_hash"] == record.content_hash
        assert entry["source_sha"] == record.source_sha
        assert (entry["n_alternatives"], entry["n_attributes"]) == (3, 3)

    def test_embeds_index_status_with_result_summary(self, app):
        get(app, "/v1/workspaces/ws-00/ranking")
        payload = body(get(app, "/v1/registry"))
        assert payload["index"]["n_result_rows"] == 1
        assert payload["index"]["result_bytes"] > 0

    def test_marks_unreadable_entries(self, app, tmp_path):
        (tmp_path / "corrupt.json").write_text("{not json")
        payload = body(get(app, "/v1/registry"))
        by_id = {entry["id"]: entry for entry in payload["workspaces"]}
        assert by_id["corrupt"] == {"id": "corrupt", "error": "unreadable"}

    def test_listing_persists_fingerprints_for_later_fast_probes(
        self, app, registry
    ):
        assert app.index.status()["n_workspaces"] == 0
        get(app, "/v1/registry")
        # the next listing (and every ranking probe) now stat-matches
        assert app.index.status()["n_workspaces"] == len(registry)
        assert app.index.status()["fresh"] == len(registry)

    def test_nested_ids_resolve(self, app, tmp_path):
        nested = tmp_path / "deep" / "nested.json"
        nested.parent.mkdir()
        workspace.save(make_small_problem(name="nested"), nested)
        payload = body(get(app, "/v1/registry"))
        assert "deep/nested" in [e["id"] for e in payload["workspaces"]]
        assert get(app, "/v1/workspaces/deep/nested/ranking").status == 200


class TestMetrics:
    def test_counters_and_latency_shape(self, app):
        get(app, "/v1/workspaces/ws-00/ranking")
        get(app, "/v1/workspaces/ws-00/ranking")
        get(app, "/nope")
        payload = body(get(app, "/metrics"))
        requests = payload["requests"]
        assert requests["total"] == 3
        assert requests["by_endpoint"]["/v1/workspaces/{id}/ranking"] == 2
        assert requests["by_status"]["200"] == 2
        assert requests["by_status"]["404"] == 1
        assert payload["cache"]["hits"] == 1
        assert payload["cache"]["misses"] == 1
        assert payload["latency"]["window"] == 3
        assert payload["latency"]["p50_ms"] <= payload["latency"]["p99_ms"]

    def test_304_counted(self, app):
        etag = get(app, "/v1/workspaces/ws-00/ranking").headers["ETag"]
        app.handle(
            "GET", "/v1/workspaces/ws-00/ranking", {"If-None-Match": etag}
        )
        payload = body(get(app, "/metrics"))
        assert payload["requests"]["not_modified"] == 1

    def test_accumulators_stay_bounded_under_many_requests(self, app):
        """10k requests with unique 404 paths must not grow the
        latency sample buffer or the endpoint label map unboundedly."""
        from repro.service.app import _Metrics

        for i in range(10_000):
            get(app, f"/nope-{i}")
        metrics = app.metrics
        assert len(metrics._latencies) <= metrics._latencies.maxlen
        assert metrics._latencies.maxlen == 4096
        assert len(metrics._by_endpoint) <= _Metrics._MAX_ENDPOINTS + 1
        payload = body(get(app, "/metrics"))
        assert payload["requests"]["by_endpoint"]["(other)"] > 0
        assert payload["latency"]["window"] <= 4096

    def test_snapshot_sorts_the_window_once_not_per_scrape(self, app):
        """Scrapes reuse one sorted copy of the latency window; only a
        new recording pays another O(window log window) sort."""
        metrics = app.metrics
        for i in range(100):
            get(app, f"/nope-{i}")
        sorts_before = metrics._n_sorts
        for _ in range(50):
            metrics.snapshot()
        assert metrics._n_sorts == sorts_before + 1
        get(app, "/nope-again")  # dirties the window
        metrics.snapshot()
        metrics.snapshot()
        assert metrics._n_sorts == sorts_before + 2

    def test_snapshot_unchanged_by_sort_caching(self, app):
        get(app, "/v1/workspaces/ws-00/ranking")
        first = app.metrics.snapshot()
        second = app.metrics.snapshot()
        assert first == second
        assert first["latency"]["p50_ms"] >= 0.0


class TestPrometheusEndpoint:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        from repro.obs import metrics as obs_metrics

        previous = obs_metrics.registry()
        obs_metrics.reset_registry()
        yield
        obs_metrics.set_registry(previous)

    def test_json_stays_the_default(self, app):
        response = get(app, "/metrics")
        assert response.content_type == "application/json"
        assert "requests" in body(response)
        assert "requests" in body(get(app, "/metrics?format=json"))

    def test_prometheus_format_and_content_type(self, app):
        from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE

        get(app, "/v1/workspaces/ws-00/ranking")
        get(app, "/v1/workspaces/ws-00/ranking")
        response = get(app, "/metrics?format=prometheus")
        assert response.status == 200
        assert response.content_type == PROMETHEUS_CONTENT_TYPE
        text = response.body.decode("utf-8")
        assert (
            'repro_http_requests_total{endpoint="/v1/workspaces/{id}/'
            'ranking",registry="default",status="200"} 2' in text
        )
        assert "repro_response_cache_hits_total 1" in text
        assert "repro_response_cache_misses_total 1" in text
        # the in-process evaluation fed the eval-latency histogram
        assert 'repro_eval_stage_seconds_bucket{stage="eval.stacked"' in text
        assert 'repro_breaker_state{registry="default"} 0' in text

    def test_prometheus_exposition_parses(self, app):
        """Every non-comment line is `name[{labels}] value`."""
        get(app, "/v1/workspaces/ws-00/ranking")
        text = get(app, "/metrics?format=prometheus").body.decode("utf-8")
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            float(value)  # must parse
            name = series.split("{", 1)[0]
            assert name.replace("_", "").isalnum(), line

    def test_histogram_buckets_monotonic_over_http(self, app):
        get(app, "/v1/workspaces/ws-00/ranking")
        text = get(app, "/metrics?format=prometheus").body.decode("utf-8")
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_http_request_seconds_bucket")
        ]
        assert counts, "expected request latency buckets"
        assert counts == sorted(counts)
        assert counts[-1] >= 1.0

    def test_unknown_format_is_400(self, app):
        response = get(app, "/metrics?format=xml")
        assert response.status == 400
        assert "unknown metrics format" in body(response)["error"]["message"]


class TestRequestId:
    def test_client_request_id_echoes_back(self, app):
        response = app.handle(
            "GET", "/healthz", {"X-Request-Id": "req-42"}
        )
        assert response.headers["X-Request-Id"] == "req-42"

    def test_request_id_generated_when_absent(self, app):
        first = get(app, "/healthz").headers["X-Request-Id"]
        second = get(app, "/healthz").headers["X-Request-Id"]
        assert first and second and first != second

    def test_error_responses_carry_request_id(self, app):
        response = app.handle("GET", "/nope", {"X-Request-Id": "req-err"})
        assert response.status == 404
        assert response.headers["X-Request-Id"] == "req-err"

    def test_request_id_lands_on_the_http_span(self, app):
        from repro.obs import trace

        with trace.tracing() as tracer:
            app.handle("GET", "/healthz", {"X-Request-Id": "req-span"})
        roots = [s for s in tracer.spans() if s.name == "http.request"]
        assert len(roots) == 1
        assert roots[0].attributes["request_id"] == "req-span"
        assert roots[0].attributes["path"] == "/healthz"


class TestCacheInvalidation:
    def test_edit_invalidates_only_that_workspace(self, app, registry):
        """A detected edit evicts the edited workspace's rendered
        responses (all verbs) while other entries stay hot."""
        get(app, "/v1/workspaces/ws-00/ranking")
        get(app, "/v1/workspaces/ws-00/dominance")
        get(app, "/v1/workspaces/ws-01/ranking")
        assert len(app.cache) == 3

        data = json.loads(registry[0].read_text())
        perf = data["alternatives"][0]["performances"]
        key = sorted(perf)[0]
        perf[key] = 0.0 if perf[key] != 0.0 else 1.0
        registry[0].write_text(json.dumps(data))

        first = get(app, "/v1/workspaces/ws-00/ranking")
        assert first.status == 200
        # old ws-00 entries were evicted, ws-01's entry survived
        assert body(get(app, "/metrics"))["cache"]["size"] == 2
        hits_before = body(get(app, "/metrics"))["cache"]["hits"]
        assert get(app, "/v1/workspaces/ws-01/ranking").status == 200
        assert (
            body(get(app, "/metrics"))["cache"]["hits"] == hits_before + 1
        )

    def test_touch_keeps_entries_hot(self, app, registry):
        get(app, "/v1/workspaces/ws-00/ranking")
        size_before = len(app.cache)
        registry[0].touch()
        response = get(app, "/v1/workspaces/ws-00/ranking")
        assert response.status == 200
        assert len(app.cache) == size_before

    def test_response_cache_invalidate_by_part(self):
        from repro.service.cache import CachedResponse, ResponseCache

        cache = ResponseCache(capacity=8)
        cache.put(("ranking", "hash-a"), CachedResponse(b"a", '"a"'))
        cache.put(("ranking", "hash-b"), CachedResponse(b"b", '"b"'))
        cache.put(("mc", "hash-a", "cfg"), CachedResponse(b"c", '"c"'))
        assert cache.invalidate("hash-a") == 2
        assert cache.get(("ranking", "hash-b")) is not None
        assert cache.get(("ranking", "hash-a")) is None
        assert cache.get(("mc", "hash-a", "cfg")) is None


def write_members(tmp_path, n_members=3):
    members = []
    for k in range(n_members):
        local = {}
        for i, node in enumerate(
            ("cost", "quality", "battery life", "vendor support")
        ):
            factor = 1.0 + 0.2 * ((k + i) % 3)
            local[node] = [0.8 * factor, 1.2 * factor]
        members.append({"name": f"dm-{k}", "local": local})
    path = tmp_path / "members.json"
    path.write_text(
        json.dumps({"format": "repro-members/1", "members": members})
    )
    return path


@pytest.fixture()
def group_app(tmp_path, tmp_path_factory, registry):
    # the roster lives OUTSIDE the registry tree: it is configuration,
    # not a workspace, and must not show up in the registry listing
    members_path = write_members(tmp_path_factory.mktemp("roster"), 3)
    with ServiceApp(tmp_path, members_path=members_path) as service_app:
        yield service_app


class TestGroupEndpoint:
    def test_group_result_matches_group_decision(self, group_app, registry):
        from repro.core.engine import GroupResult
        from repro.core.group import (
            GroupDecision,
            load_members,
            members_from_spec,
        )

        response = get(group_app, "/v1/workspaces/ws-01/group")
        assert response.status == 200
        payload = body(response)
        problem = workspace.load(registry[1])
        spec = load_members(group_app.members_path)
        expected = GroupDecision(
            problem, members_from_spec(spec, problem.hierarchy)
        ).result()
        assert GroupResult.from_payload(payload["group"]) == expected
        assert payload["members_digest"] == group_app.members_digest

    def test_without_roster_404(self, app):
        response = get(app, "/v1/workspaces/ws-00/group")
        assert response.status == 404
        assert "no member roster" in body(response)["error"]["message"]

    def test_etag_304_and_cache_hit(self, group_app):
        first = get(group_app, "/v1/workspaces/ws-00/group")
        etag = first.headers["ETag"]
        again = get(group_app, "/v1/workspaces/ws-00/group")
        assert again.headers["X-Cache"] == "hit"
        assert again.body == first.body
        not_modified = group_app.handle(
            "GET", "/v1/workspaces/ws-00/group", {"If-None-Match": etag}
        )
        assert not_modified.status == 304

    def test_read_through_shares_cache_with_group_runs(
        self, tmp_path, registry, group_app
    ):
        """Rows a `repro group` run commits serve byte-identically."""
        from repro.core.group import load_members
        from repro.core.runtime import BatchOptions, ShardedRunner

        spec = load_members(group_app.members_path)
        ShardedRunner(workers=1, options=BatchOptions(group=spec)).run(
            [str(p) for p in registry], index=group_app.index
        )
        warm = get(group_app, "/v1/workspaces/ws-02/group")
        assert warm.status == 200
        # the served rows ARE the committed rows: evaluate independently
        with ServiceApp(
            tmp_path, members_path=group_app.members_path
        ) as fresh_app:
            fresh = get(fresh_app, "/v1/workspaces/ws-02/group")
        assert fresh.body == warm.body

    def test_query_params_rejected(self, group_app):
        response = get(group_app, "/v1/workspaces/ws-00/group?simulations=5")
        assert response.status == 400

    def test_group_etag_differs_from_ranking_etag(self, group_app):
        ranking = get(group_app, "/v1/workspaces/ws-00/ranking")
        group = get(group_app, "/v1/workspaces/ws-00/group")
        assert ranking.headers["ETag"] != group.headers["ETag"]

    def test_healthz_reports_members(self, group_app):
        payload = body(get(group_app, "/healthz"))
        assert payload["members"] == str(group_app.members_path)

    def test_malformed_roster_fails_boot(self, tmp_path, registry):
        bad = tmp_path / "bad-members.json"
        bad.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="format"):
            ServiceApp(tmp_path, members_path=bad)
