"""Tests for the threaded HTTP layer (real sockets, real threads)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import workspace
from repro.service.app import ServiceApp
from repro.service.server import ServiceServer

from ..conftest import make_small_problem


def write_registry(tmp_path, n=4):
    paths = []
    for i in range(n):
        problem = make_small_problem(
            missing_cell=(i % 2 == 0), name=f"ws-{i:02d}"
        )
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


@pytest.fixture()
def server(tmp_path):
    write_registry(tmp_path)
    with ServiceServer(tmp_path, port=0, workers=4, access_log=None) as srv:
        yield srv


def fetch(server, target, headers=None, data=None, method=None):
    request = urllib.request.Request(
        server.url + target, headers=headers or {}, data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestHTTPRoundTrip:
    def test_healthz(self, server):
        status, headers, raw = fetch(server, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(raw)["status"] == "ok"

    def test_ranking_bytes_match_direct_app_dispatch(self, server, tmp_path):
        status, _, raw = fetch(server, "/v1/workspaces/ws-00/ranking")
        assert status == 200
        with ServiceApp(tmp_path) as app:
            direct = app.handle("GET", "/v1/workspaces/ws-00/ranking")
        assert raw == direct.body

    def test_etag_304_over_http(self, server):
        _, headers, _ = fetch(server, "/v1/workspaces/ws-01/ranking")
        status, revalidated, raw = fetch(
            server,
            "/v1/workspaces/ws-01/ranking",
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 304
        assert raw == b""
        assert revalidated["ETag"] == headers["ETag"]

    def test_post_evaluate(self, server):
        doc = workspace.to_dict(make_small_problem(name="adhoc"))
        status, _, raw = fetch(
            server,
            "/v1/evaluate",
            headers={"Content-Type": "application/json"},
            data=json.dumps(doc).encode(),
            method="POST",
        )
        assert status == 200
        assert json.loads(raw)["problem"] == "adhoc"

    def test_error_statuses_over_http(self, server):
        assert fetch(server, "/v1/workspaces/ghost/ranking")[0] == 404
        assert fetch(server, "/nope")[0] == 404
        assert fetch(server, "/healthz", data=b"{}", method="POST")[0] == 405


class TestConcurrency:
    def test_concurrent_requests_serve_identical_bytes(self, server):
        # warm every target once so the smoke exercises the hot path too
        reference = {
            ws_id: fetch(server, f"/v1/workspaces/{ws_id}/ranking")[2]
            for ws_id in ("ws-00", "ws-01", "ws-02", "ws-03")
        }
        errors = []

        def client(worker: int) -> None:
            try:
                for i in range(20):
                    ws_id = f"ws-{(worker + i) % 4:02d}"
                    status, _, raw = fetch(
                        server, f"/v1/workspaces/{ws_id}/ranking"
                    )
                    assert status == 200
                    assert raw == reference[ws_id]
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_concurrent_cold_misses_evaluate_once(self, tmp_path):
        write_registry(tmp_path, n=1)
        with ServiceServer(
            tmp_path, port=0, workers=4, access_log=None
        ) as srv:
            results = []

            def client() -> None:
                results.append(fetch(srv, "/v1/workspaces/ws-00/ranking"))

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert [status for status, _, _ in results] == [200] * 6
            assert len({raw for _, _, raw in results}) == 1
            # the write lock collapsed the stampede into one evaluation
            assert srv.app.index.status()["n_result_rows"] == 1


    def test_idle_keepalive_clients_do_not_starve_workers(self, tmp_path):
        import socket

        write_registry(tmp_path, n=1)
        with ServiceServer(
            tmp_path, port=0, workers=2, access_log=None
        ) as srv:
            idlers = []
            try:
                # two clients fill the old per-connection budget, then
                # park: the worker slots are per-request, so a third
                # client must still be served
                for _ in range(2):
                    sock = socket.create_connection(srv.address, timeout=10)
                    sock.sendall(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    assert b"200" in sock.recv(65536)
                    idlers.append(sock)
                assert fetch(srv, "/healthz")[0] == 200
            finally:
                for sock in idlers:
                    sock.close()


class TestLifecycle:
    def test_stop_closes_the_socket_and_the_index(self, tmp_path):
        write_registry(tmp_path, n=1)
        server = ServiceServer(tmp_path, port=0, access_log=None).start()
        url = server.url
        assert fetch(server, "/healthz")[0] == 200
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(url + "/healthz", timeout=2)

    def test_double_start_is_rejected(self, tmp_path):
        write_registry(tmp_path, n=1)
        server = ServiceServer(tmp_path, port=0, access_log=None).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_access_log_lines(self, tmp_path):
        import io
        import json

        write_registry(tmp_path, n=1)
        log = io.StringIO()
        with ServiceServer(tmp_path, port=0, access_log=log) as srv:
            fetch(srv, "/healthz")
        lines = [ln for ln in log.getvalue().splitlines() if ln]
        assert lines, "expected at least one access-log line"
        entry = json.loads(lines[0])
        assert entry["method"] == "GET"
        assert entry["path"] == "/healthz"
        assert entry["status"] == 200
        assert entry["duration_ms"] >= 0
        assert entry["request_id"]
        # ISO-8601 timestamp parses back
        from datetime import datetime

        datetime.fromisoformat(entry["ts"])

    def test_rejects_non_positive_workers(self, tmp_path):
        write_registry(tmp_path, n=1)
        with pytest.raises(ValueError):
            ServiceServer(tmp_path, port=0, workers=0, access_log=None)


class TestServeCLI:
    def test_serve_requires_registry_directory(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="not a registry directory"):
            main(["serve", "--registry", str(tmp_path / "nope")])

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--registry", "r"])
        assert (args.host, args.port, args.workers) == ("127.0.0.1", 8321, 8)
        assert args.index_path is None and args.quiet is False

    def test_sigterm_shuts_down_gracefully(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        write_registry(tmp_path, n=1)
        root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--registry", str(tmp_path), "--port", "0", "--quiet",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=root,
        )
        try:
            banner = process.stdout.readline()
            assert "serving registry" in banner
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            assert "shut down" in process.stdout.read()
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
