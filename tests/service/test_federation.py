"""Tests for the federation layer: multi-registry serving, isolation,
legacy aliases, versioned reads, registry sync and cache warming."""

import json

import pytest

from repro.core import workspace
from repro.core.index import RegistryIndex
from repro.core.runtime import ShardedRunner
from repro.service.app import ServiceApp
from repro.service.federation import Federation, pull_registry

from ..conftest import make_small_problem


def write_registry(root, names):
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for name in names:
        path = root / f"{name}.json"
        workspace.save(make_small_problem(name=name), path)
        paths.append(path)
    return paths


@pytest.fixture()
def two_registries(tmp_path):
    alpha = tmp_path / "alpha"
    beta = tmp_path / "beta"
    write_registry(alpha, ["a-0", "a-1"])
    write_registry(beta, ["b-0", "b-1"])
    return alpha, beta


@pytest.fixture()
def app(two_registries):
    alpha, beta = two_registries
    with ServiceApp(alpha, mounts={"beta": beta}) as service_app:
        yield service_app


def get(app, target, **headers):
    return app.handle("GET", target, headers)


def body(response):
    return json.loads(response.body)


class TestFederationTable:
    def test_first_mount_is_default(self, two_registries):
        alpha, beta = two_registries
        federation = Federation(lambda: object())
        federation.mount("alpha", alpha)
        federation.mount("beta", beta)
        assert federation.default_name == "alpha"
        assert federation.names() == ["alpha", "beta"]
        assert len(federation) == 2
        federation.close()

    def test_bad_names_and_dirs_rejected(self, tmp_path):
        federation = Federation(lambda: object())
        with pytest.raises(ValueError, match="invalid registry name"):
            federation.mount("Bad Name", tmp_path)
        with pytest.raises(ValueError, match="not a registry directory"):
            federation.mount("ok", tmp_path / "missing")

    def test_duplicate_mount_rejected(self, tmp_path):
        federation = Federation(lambda: object())
        federation.mount("dup", tmp_path)
        with pytest.raises(ValueError, match="already mounted"):
            federation.mount("dup", tmp_path)
        federation.close()

    def test_default_cannot_unmount(self, tmp_path):
        federation = Federation(lambda: object())
        federation.mount("only", tmp_path)
        with pytest.raises(ValueError):
            federation.unmount("only")
        with pytest.raises(KeyError):
            federation.unmount("ghost")
        federation.close()


class TestMultiRegistryServing:
    def test_routes_reach_each_registry(self, app):
        assert get(app, "/v1/registries/default/workspaces/a-0/ranking")\
            .status == 200
        assert get(app, "/v1/registries/beta/workspaces/b-0/ranking")\
            .status == 200
        # a workspace only exists in its own registry
        assert get(app, "/v1/registries/beta/workspaces/a-0/ranking")\
            .status == 404

    def test_registry_listing_endpoint(self, app, two_registries):
        alpha, beta = two_registries
        payload = body(get(app, "/v1/registries"))
        assert payload["default"] == "default"
        assert payload["n_registries"] == 2
        names = {r["name"]: r for r in payload["registries"]}
        assert names["default"]["default"] is True
        assert names["beta"]["root"] == str(beta.resolve())

    def test_mount_and_unmount_at_runtime(self, app, tmp_path):
        gamma = tmp_path / "gamma"
        write_registry(gamma, ["g-0"])
        created = app.handle(
            "POST",
            "/v1/registries",
            body=json.dumps({"name": "gamma", "root": str(gamma)}).encode(),
        )
        assert created.status == 201
        assert get(app, "/v1/registries/gamma/workspaces/g-0/ranking")\
            .status == 200
        gone = app.handle("DELETE", "/v1/registries/gamma")
        assert gone.status == 200
        assert get(app, "/v1/registries/gamma/workspaces/g-0/ranking")\
            .status == 404

    def test_unmounting_default_is_409(self, app):
        response = app.handle("DELETE", "/v1/registries/default")
        assert response.status == 409
        assert body(response)["error"]["code"] == "conflict"

    def test_healthz_reports_every_registry(self, app):
        payload = body(get(app, "/healthz"))
        assert payload["default_registry"] == "default"
        assert set(payload["registries"]) == {"default", "beta"}
        for block in payload["registries"].values():
            assert block["status"] == "ok"


class TestCacheIsolation:
    def test_editing_one_registry_keeps_the_other_warm(
        self, app, two_registries
    ):
        alpha, beta = two_registries
        assert get(app, "/v1/registries/default/workspaces/a-0/ranking")\
            .headers["X-Cache"] == "miss"
        assert get(app, "/v1/registries/beta/workspaces/b-0/ranking")\
            .headers["X-Cache"] == "miss"
        # edit registry beta's workspace: its entries must invalidate...
        workspace.save(
            make_small_problem(missing_cell=True, name="b-0"),
            beta / "b-0.json",
        )
        edited = get(app, "/v1/registries/beta/workspaces/b-0/ranking")
        assert edited.headers["X-Cache"] == "miss"
        # ...while registry alpha's stay hot
        assert get(app, "/v1/registries/default/workspaces/a-0/ranking")\
            .headers["X-Cache"] == "hit"

    def test_per_registry_breakers_are_distinct(self, app):
        default_state = app.federation.get("default")
        beta_state = app.federation.get("beta")
        assert default_state.breaker is not beta_state.breaker
        for _ in range(default_state.breaker.snapshot()["threshold"]):
            default_state.breaker.record_failure()
        assert default_state.breaker.state == "open"
        assert beta_state.breaker.state == "closed"
        # beta still evaluates fine
        assert get(app, "/v1/registries/beta/workspaces/b-1/ranking")\
            .status == 200


class TestLegacyAliases:
    def test_bodies_are_byte_identical(self, app):
        pairs = [
            ("/v1/workspaces/a-0/ranking",
             "/v1/registries/default/workspaces/a-0/ranking"),
            ("/v1/workspaces/a-0/dominance",
             "/v1/registries/default/workspaces/a-0/dominance"),
            ("/v1/workspaces/a-0/rankintervals",
             "/v1/registries/default/workspaces/a-0/rankintervals"),
            ("/v1/registry",
             "/v1/registries/default/registry"),
        ]
        for legacy_path, new_path in pairs:
            legacy = get(app, legacy_path)
            new = get(app, new_path)
            assert legacy.status == new.status == 200
            assert legacy.body == new.body
            assert legacy.headers.get("ETag") == new.headers.get("ETag")

    def test_legacy_routes_send_deprecation_headers(self, app):
        legacy = get(app, "/v1/workspaces/a-0/ranking")
        assert legacy.headers["Deprecation"] == "true"
        assert "Sunset" in legacy.headers
        assert "successor-version" in legacy.headers["Link"]
        new = get(app, "/v1/registries/default/workspaces/a-0/ranking")
        assert "Deprecation" not in new.headers

    def test_legacy_evaluate_aliases_default(self, app):
        doc = workspace.to_dict(make_small_problem(name="adhoc"))
        legacy = app.handle(
            "POST", "/v1/evaluate", body=json.dumps(doc).encode()
        )
        new = app.handle(
            "POST",
            "/v1/registries/default/evaluate",
            body=json.dumps(doc).encode(),
        )
        assert legacy.status == new.status == 200
        assert legacy.body == new.body
        assert legacy.headers["Deprecation"] == "true"


class TestVersionedReads:
    def test_lineage_grows_with_edits_and_pins_read_old_results(self, app):
        first = body(get(app, "/v1/registries/default/workspaces/a-0/ranking"))
        old_hash = first["content_hash"]
        alpha = app.federation.get("default").root
        workspace.save(
            make_small_problem(missing_cell=True, name="a-0"),
            alpha / "a-0.json",
        )
        second = body(
            get(app, "/v1/registries/default/workspaces/a-0/ranking")
        )
        assert second["content_hash"] != old_hash
        versions = body(
            get(app, "/v1/registries/default/workspaces/a-0/versions")
        )
        hashes = {v["content_hash"] for v in versions["versions"]}
        assert {old_hash, second["content_hash"]} <= hashes
        current = [v for v in versions["versions"] if v["current"]]
        assert [v["content_hash"] for v in current] == [
            second["content_hash"]
        ]
        # the pinned read still serves the superseded version's floats
        pinned = body(
            get(
                app,
                "/v1/registries/default/workspaces/a-0/ranking?at="
                + old_hash,
            )
        )
        assert pinned == first

    def test_tagging_a_version(self, app):
        ranking = body(
            get(app, "/v1/registries/default/workspaces/a-1/ranking")
        )
        response = app.handle(
            "POST",
            "/v1/registries/default/workspaces/a-1/versions",
            body=json.dumps(
                {"content_hash": ranking["content_hash"], "tag": "v1"}
            ).encode(),
        )
        assert response.status == 200
        versions = body(
            get(app, "/v1/registries/default/workspaces/a-1/versions")
        )
        assert versions["versions"][-1]["tag"] == "v1"

    def test_tagging_unknown_hash_is_404(self, app):
        response = app.handle(
            "POST",
            "/v1/registries/default/workspaces/a-1/versions",
            body=json.dumps(
                {"content_hash": "ab" * 16, "tag": "ghost"}
            ).encode(),
        )
        assert response.status == 404
        assert body(response)["error"]["code"] == "version_not_found"


class TestRegistryPull:
    def test_pull_copies_workspaces_and_cached_results(self, tmp_path):
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        paths = write_registry(src, ["p-0", "p-1"])
        with RegistryIndex(src / ".repro-index.sqlite") as index:
            ShardedRunner(workers=1).run(
                [str(p) for p in paths], index=index
            )
        report = pull_registry(src, dst)
        assert report.copied == 2
        assert report.result_sets_copied == 2
        # the destination serves the source's cached floats without
        # re-evaluating: its index already has the result rows
        with RegistryIndex(dst / ".repro-index.sqlite") as index:
            assert index.status()["n_result_rows"] > 0
        with ServiceApp(src) as src_app, ServiceApp(dst) as dst_app:
            src_body = get(src_app, "/v1/workspaces/p-0/ranking").body
            dst_body = get(dst_app, "/v1/workspaces/p-0/ranking").body
        assert src_body == dst_body

    def test_pull_is_idempotent(self, tmp_path):
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        paths = write_registry(src, ["p-0", "p-1", "p-2"])
        with RegistryIndex(src / ".repro-index.sqlite") as index:
            ShardedRunner(workers=1).run(
                [str(p) for p in paths], index=index
            )
        first = pull_registry(src, dst)
        assert (first.copied, first.skipped) == (3, 0)
        second = pull_registry(src, dst)
        assert (second.copied, second.updated, second.skipped) == (0, 0, 3)
        assert second.result_sets_copied == 0
        assert second.result_sets_skipped == 3
        assert second.version_rows_added == 0

    def test_pull_updates_changed_workspaces(self, tmp_path):
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        write_registry(src, ["p-0"])
        pull_registry(src, dst)
        workspace.save(
            make_small_problem(missing_cell=True, name="p-0"),
            src / "p-0.json",
        )
        report = pull_registry(src, dst)
        assert report.updated == 1
        assert (dst / "p-0.json").read_bytes() == (
            src / "p-0.json"
        ).read_bytes()

    def test_pull_rejects_same_directory(self, tmp_path):
        write_registry(tmp_path / "r", ["p-0"])
        with pytest.raises(ValueError, match="same"):
            pull_registry(tmp_path / "r", tmp_path / "r")


class TestCacheWarming:
    def test_edit_triggers_background_warm(self, tmp_path):
        root = tmp_path / "warm"
        write_registry(root, ["w-0"])
        with ServiceApp(root, warm_writes=True) as app:
            assert get(app, "/v1/workspaces/w-0/ranking").status == 200
            workspace.save(
                make_small_problem(missing_cell=True, name="w-0"),
                root / "w-0.json",
            )
            # the listing probe detects the edit and queues the warm
            assert get(app, "/v1/registry").status == 200
            assert app._warmer.drain(timeout=30.0)
            response = get(app, "/v1/workspaces/w-0/ranking")
            assert response.status == 200
            assert response.headers["X-Cache"] == "hit"

    def test_warm_failures_are_swallowed(self, tmp_path):
        root = tmp_path / "warm"
        write_registry(root, ["w-0"])
        with ServiceApp(root, warm_writes=True) as app:
            app._warmer.notify("default", "missing-workspace")
            app._warmer.notify("ghost-registry", "w-0")
            assert app._warmer.drain(timeout=10.0)
            assert get(app, "/v1/workspaces/w-0/ranking").status == 200
