"""Tests for the declarative route layer: matching, errors, auth,
gzip + ETag interaction and the generated OpenAPI document."""

import gzip
import json

import pytest

from repro.core import workspace
from repro.service.app import ROUTES, ServiceApp
from repro.service.cache import accepts_gzip, gzip_bytes
from repro.service.routes import (
    ERROR_CODES,
    QueryParam,
    Route,
    Router,
    ServiceError,
    build_openapi,
    coerce_query,
)

from ..conftest import make_small_problem


@pytest.fixture()
def registry(tmp_path):
    paths = []
    for i in range(3):
        path = tmp_path / f"ws-{i:02d}.json"
        workspace.save(make_small_problem(name=f"ws-{i:02d}"), path)
        paths.append(path)
    return paths


@pytest.fixture()
def app(tmp_path, registry):
    with ServiceApp(tmp_path) as service_app:
        yield service_app


def get(app, target, **headers):
    return app.handle("GET", target, headers)


def body(response):
    return json.loads(response.body)


class TestRouter:
    def test_single_segment_param(self):
        router = Router(
            [Route("GET", "/v1/things/{name}", "_h", "get_thing", "t")]
        )
        route, params = router.match("GET", "/v1/things/abc")
        assert route.name == "get_thing"
        assert params == {"name": "abc"}

    def test_greedy_param_spans_segments(self):
        router = Router(
            [Route("GET", "/v1/ws/{id...}/rank", "_h", "rank", "t")]
        )
        _, params = router.match("GET", "/v1/ws/a/b/c/rank")
        assert params == {"id": "a/b/c"}

    def test_greedy_needs_at_least_one_segment(self):
        router = Router(
            [Route("GET", "/v1/ws/{id...}/rank", "_h", "rank", "t")]
        )
        with pytest.raises(ServiceError) as excinfo:
            router.match("GET", "/v1/ws/rank")
        assert excinfo.value.status == 404

    def test_405_vs_404_discrimination(self):
        router = Router(
            [
                Route("GET", "/v1/x", "_h", "get_x", "t"),
                Route("POST", "/v1/x", "_h", "post_x", "t"),
                Route("GET", "/v1/y", "_h", "get_y", "t"),
            ]
        )
        with pytest.raises(ServiceError) as excinfo:
            router.match("DELETE", "/v1/x")
        assert excinfo.value.status == 405
        assert excinfo.value.headers["Allow"] == "GET, POST"
        with pytest.raises(ServiceError) as excinfo:
            router.match("GET", "/v1/zzz")
        assert excinfo.value.status == 404

    def test_route_names_must_be_unique(self):
        route = Route("GET", "/v1/x", "_h", "dup", "t")
        with pytest.raises(ValueError):
            Router([route, Route("GET", "/v1/y", "_h", "dup", "t")])

    def test_label_elides_greedy_marker(self):
        route = Route("GET", "/v1/ws/{id...}/rank", "_h", "rank", "t")
        assert route.label == "/v1/ws/{id}/rank"


class TestCoercion:
    ROUTE = Route(
        "GET",
        "/v1/x",
        "_h",
        "x",
        "t",
        params=(
            QueryParam("n", kind="int", default=7, minimum=1),
            QueryParam("mode", choices=("a", "b"), default="a"),
        ),
    )

    def test_defaults_fill_absent_params(self):
        assert coerce_query(self.ROUTE, {}) == {"n": 7, "mode": "a"}

    def test_unknown_param_is_400(self):
        with pytest.raises(ServiceError) as excinfo:
            coerce_query(self.ROUTE, {"bogus": ["1"]})
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.message

    def test_int_coercion_and_minimum(self):
        assert coerce_query(self.ROUTE, {"n": ["3"]})["n"] == 3
        with pytest.raises(ServiceError):
            coerce_query(self.ROUTE, {"n": ["zero"]})
        with pytest.raises(ServiceError):
            coerce_query(self.ROUTE, {"n": ["0"]})

    def test_choices_enforced(self):
        with pytest.raises(ServiceError) as excinfo:
            coerce_query(self.ROUTE, {"mode": ["c"]})
        assert "must be one of" in excinfo.value.message


class TestErrorEnvelope:
    def test_envelope_shape_on_400_404_405(self, app):
        cases = [
            (get(app, "/v1/workspaces/ws-00/ranking?bogus=1"), 400),
            (get(app, "/v1/workspaces/nope/ranking"), 404),
            (app.handle("POST", "/healthz"), 405),
        ]
        for response, status in cases:
            assert response.status == status
            envelope = body(response)["error"]
            assert set(envelope) == {"code", "message", "detail"}
            assert envelope["code"] in ERROR_CODES

    def test_405_sets_allow_header(self, app):
        response = app.handle("DELETE", "/v1/evaluate")
        assert response.status == 405
        assert "POST" in response.headers["Allow"]
        assert body(response)["error"]["code"] == "method_not_allowed"

    def test_registry_not_found_code(self, app):
        response = get(app, "/v1/registries/ghost/workspaces/ws-00/ranking")
        assert response.status == 404
        assert body(response)["error"]["code"] == "registry_not_found"

    def test_version_not_found_carries_detail(self, app):
        response = get(app, "/v1/workspaces/ws-00/ranking?at=" + "ab" * 16)
        assert response.status == 404
        envelope = body(response)["error"]
        assert envelope["code"] == "version_not_found"
        assert envelope["detail"] == {"content_hash": "ab" * 16}

    def test_every_documented_code_is_a_known_string(self):
        for code, description in ERROR_CODES.items():
            assert code == code.lower()
            assert description


class TestAuth:
    @pytest.fixture()
    def authed(self, tmp_path, registry):
        with ServiceApp(tmp_path, auth_token="sekrit") as service_app:
            yield service_app

    def test_missing_token_is_401(self, authed):
        response = get(authed, "/v1/workspaces/ws-00/ranking")
        assert response.status == 401
        assert response.headers["WWW-Authenticate"] == "Bearer"
        assert body(response)["error"]["code"] == "unauthorized"

    def test_wrong_token_is_403(self, authed):
        response = get(
            authed,
            "/v1/workspaces/ws-00/ranking",
            Authorization="Bearer wrong",
        )
        assert response.status == 403
        assert body(response)["error"]["code"] == "forbidden"

    def test_right_token_passes(self, authed):
        response = get(
            authed,
            "/v1/workspaces/ws-00/ranking",
            Authorization="Bearer sekrit",
        )
        assert response.status == 200

    def test_public_routes_stay_open(self, authed):
        assert get(authed, "/healthz").status == 200
        assert get(authed, "/metrics").status == 200
        assert get(authed, "/v1/openapi.json").status == 200

    def test_no_token_configured_means_no_auth(self, app):
        assert get(app, "/v1/workspaces/ws-00/ranking").status == 200


class TestGzip:
    def test_accepts_gzip_parsing(self):
        assert accepts_gzip("gzip")
        assert accepts_gzip("gzip, deflate")
        assert accepts_gzip("deflate, gzip;q=0.5")
        assert accepts_gzip("*")
        assert not accepts_gzip(None)
        assert not accepts_gzip("")
        assert not accepts_gzip("gzip;q=0")
        assert not accepts_gzip("identity")

    def test_gzip_bytes_is_deterministic(self):
        payload = b"x" * 2048
        assert gzip_bytes(payload) == gzip_bytes(payload)
        assert gzip.decompress(gzip_bytes(payload)) == payload

    def test_large_body_compresses_when_accepted(self, app):
        plain = get(app, "/v1/registry")
        zipped = get(app, "/v1/registry", **{"Accept-Encoding": "gzip"})
        assert "Content-Encoding" not in plain.headers
        assert zipped.headers["Content-Encoding"] == "gzip"
        assert zipped.headers["Vary"] == "Accept-Encoding"
        assert gzip.decompress(zipped.body) == plain.body
        assert len(zipped.body) < len(plain.body)

    def test_small_body_stays_identity(self, app):
        # a 404 envelope is well under the compression threshold
        response = get(app, "/nope", **{"Accept-Encoding": "gzip"})
        assert len(response.body) < 512
        assert "Content-Encoding" not in response.headers

    def test_etag_is_unchanged_by_compression(self, app):
        plain = get(app, "/v1/workspaces/ws-00/ranking")
        zipped = get(
            app,
            "/v1/workspaces/ws-00/ranking",
            **{"Accept-Encoding": "gzip"},
        )
        assert plain.headers["ETag"] == zipped.headers["ETag"]

    def test_304_wins_over_gzip(self, app):
        etag = get(app, "/v1/workspaces/ws-00/ranking").headers["ETag"]
        response = get(
            app,
            "/v1/workspaces/ws-00/ranking",
            **{"Accept-Encoding": "gzip", "If-None-Match": etag},
        )
        assert response.status == 304
        assert response.body == b""
        assert "Content-Encoding" not in response.headers

    def test_gzip_client_revalidates_with_identity_etag(self, app):
        zipped = get(
            app,
            "/v1/workspaces/ws-00/ranking",
            **{"Accept-Encoding": "gzip"},
        )
        revalidated = get(
            app,
            "/v1/workspaces/ws-00/ranking",
            **{"If-None-Match": zipped.headers["ETag"]},
        )
        assert revalidated.status == 304


class TestOpenAPI:
    def test_served_spec_matches_route_table(self, app):
        response = get(app, "/v1/openapi.json")
        assert response.status == 200
        spec = body(response)
        assert spec == build_openapi(ROUTES)
        assert spec["openapi"] == "3.1.0"

    def test_every_route_has_an_operation(self):
        spec = build_openapi(ROUTES)
        operation_ids = {
            operation["operationId"]
            for methods in spec["paths"].values()
            for operation in methods.values()
        }
        assert operation_ids == {route.name for route in ROUTES}

    def test_legacy_routes_are_marked_deprecated(self):
        spec = build_openapi(ROUTES)
        ranking = spec["paths"]["/v1/workspaces/{id}/ranking"]["get"]
        assert ranking["deprecated"] is True
        new = spec["paths"][
            "/v1/registries/{registry}/workspaces/{id}/ranking"
        ]["get"]
        assert "deprecated" not in new

    def test_error_envelope_schema_lists_every_code(self):
        spec = build_openapi(ROUTES)
        schema = spec["components"]["schemas"]["ErrorEnvelope"]
        codes = schema["properties"]["error"]["properties"]["code"]["enum"]
        assert codes == sorted(ERROR_CODES)

    def test_non_public_routes_declare_bearer_security(self):
        spec = build_openapi(ROUTES)
        healthz = spec["paths"]["/healthz"]["get"]
        assert "security" not in healthz
        ranking = spec["paths"][
            "/v1/registries/{registry}/workspaces/{id}/ranking"
        ]["get"]
        assert {"bearerAuth": []} in ranking["security"]
