"""Tests for the NeOn assess activity (criteria thresholds)."""

import pytest

from repro.core.scales import MISSING
from repro.neon.assessment import (
    TRANSFORMABLE_LANGUAGES,
    assess,
    assess_batch,
    assessment_table,
    batch_assessment_table,
)
from repro.ontology.corpus import ReuseMetadata
from repro.ontology.cq import CompetencyQuestion
from repro.ontology.generator import OntologySpec, generate

CQS = [
    CompetencyQuestion("cq0", "x", key_terms=("chrominance",)),
    CompetencyQuestion("cq1", "x", key_terms=("rotoscope",)),
]


def assessed(meta: ReuseMetadata, language_adequacy: int = 3):
    spec = OntologySpec(
        "T", seed=11, language_adequacy=language_adequacy,
        covered_cqs=(CQS[0],), metadata=meta,
    )
    return assess(generate(spec), CQS)


class TestProvenanceCriteria:
    @pytest.mark.parametrize(
        "cost,level", [(0.0, 3), (50.0, 2), (500.0, 1), (5000.0, 0)]
    )
    def test_financial_cost(self, cost, level):
        assert assessed(ReuseMetadata(financial_cost=cost)).performance(
            "financial_cost"
        ) == level

    @pytest.mark.parametrize(
        "days,level", [(0.5, 3), (3.0, 2), (14.0, 1), (90.0, 0)]
    )
    def test_required_time(self, days, level):
        assert assessed(ReuseMetadata(access_time_days=days)).performance(
            "required_time"
        ) == level

    @pytest.mark.parametrize("suites,level", [(0, 0), (1, 1), (2, 2), (3, 3)])
    def test_tests(self, suites, level):
        assert assessed(ReuseMetadata(n_test_suites=suites)).performance(
            "test_availability"
        ) == level

    @pytest.mark.parametrize("pubs,level", [(0, 0), (1, 1), (4, 2), (8, 3)])
    def test_team(self, pubs, level):
        assert assessed(ReuseMetadata(team_publications=pubs)).performance(
            "team_reputation"
        ) == level

    @pytest.mark.parametrize(
        "purpose,level",
        [("unclassified", 0), ("academic", 1), ("standard-transform", 2),
         ("project", 3)],
    )
    def test_purpose_levels(self, purpose, level):
        assert assessed(ReuseMetadata(purpose=purpose)).performance(
            "purpose_reliability"
        ) == level

    @pytest.mark.parametrize(
        "reused,patterns,level",
        [((), False, 0), (("A",), False, 1), (("A", "B"), False, 2),
         (("A", "B"), True, 3)],
    )
    def test_practical_support(self, reused, patterns, level):
        meta = ReuseMetadata(reused_by=reused, uses_design_patterns=patterns)
        assert assessed(meta).performance("practical_support") == level


class TestMissingFacts:
    def test_unknown_facts_become_missing(self):
        meta = ReuseMetadata(
            financial_cost=None,
            access_time_days=None,
            n_test_suites=None,
            evaluation_level=None,
            team_publications=None,
            purpose=None,
            reused_by=None,
        )
        assessment = assessed(meta)
        for attr in (
            "financial_cost", "required_time", "test_availability",
            "former_evaluation", "team_reputation", "purpose_reliability",
            "practical_support",
        ):
            assert assessment.performance(attr) is MISSING
        assert set(assessment.missing_attributes) == {
            "financial_cost", "required_time", "test_availability",
            "former_evaluation", "team_reputation", "purpose_reliability",
            "practical_support",
        }

    def test_structural_criteria_never_missing(self):
        assessment = assessed(ReuseMetadata(
            financial_cost=None, purpose=None, reused_by=None,
        ))
        for attr in ("documentation_quality", "external_knowledge",
                     "code_clarity", "knowledge_extraction",
                     "naming_conventions", "implementation_language",
                     "functional_requirements"):
            assert assessment.performance(attr) is not MISSING


class TestLanguage:
    def test_transformable_pairs(self):
        assert ("RDFS", "OWL") in TRANSFORMABLE_LANGUAGES

    @pytest.mark.parametrize("adequacy,expected", [(3, 3), (2, 2), (1, 1)])
    def test_language_levels(self, adequacy, expected):
        assessment = assessed(ReuseMetadata(), language_adequacy=adequacy)
        assert assessment.performance("implementation_language") == expected


class TestExpertsBump:
    def test_contactable_experts_raise_external_knowledge(self):
        spec = OntologySpec(
            "T", seed=12, ext_knowledge=0,
            metadata=ReuseMetadata(experts_contactable=True),
        )
        assessment = assess(generate(spec), CQS)
        assert assessment.performance("external_knowledge") == 2


class TestValueT:
    def test_cq_coverage_becomes_value_t(self):
        spec = OntologySpec("T", seed=13, covered_cqs=(CQS[0],))
        assessment = assess(generate(spec), CQS)
        assert assessment.performance("functional_requirements") == pytest.approx(1.5)
        assert assessment.cq_coverage.covered == ("cq0",)


class TestBatchAssessment:
    """Vectorised registry scoring must equal per-candidate assess()."""

    def _pool(self):
        metas = [
            ReuseMetadata(),
            ReuseMetadata(
                financial_cost=None, purpose=None, reused_by=None,
                n_test_suites=None, team_publications=None,
                access_time_days=None, evaluation_level=None,
            ),
            ReuseMetadata(
                financial_cost=500.0, access_time_days=14.0,
                n_test_suites=2, evaluation_level=3, team_publications=8,
                purpose="project", reused_by=("A", "B"),
                uses_design_patterns=True, experts_contactable=True,
            ),
            ReuseMetadata(purpose="unclassified", team_publications=0),
        ]
        return [
            generate(
                OntologySpec(
                    f"P{i}", seed=40 + i,
                    doc_quality=i % 4,
                    ext_knowledge=i % 4,
                    code_clarity=max(2, 3 - i % 2),
                    naming=1 + i % 3,
                    knowledge_extraction=i % 4,
                    language_adequacy=1 + i % 3,
                    covered_cqs=tuple(CQS[: 1 + i % 2]),
                    metadata=meta,
                )
            )
            for i, meta in enumerate(metas)
        ]

    def test_equals_per_candidate_scalar_path(self):
        entries = self._pool()
        batch = assess_batch(entries, CQS)
        assert len(batch) == len(entries)
        for entry, batched in zip(entries, batch):
            scalar = assess(entry, CQS)
            assert batched.name == scalar.name
            for attr, expected in scalar.performances.items():
                actual = batched.performances[attr]
                if expected is MISSING:
                    assert actual is MISSING, (entry.name, attr)
                else:
                    assert actual == expected, (entry.name, attr)
                    assert type(actual) is type(expected), (entry.name, attr)

    def test_case_study_registry_equivalence(self):
        from repro.casestudy.corpus import multimedia_registry
        from repro.casestudy.cqs import m3_competency_questions

        registry = multimedia_registry()
        questions = m3_competency_questions()
        entries = [registry.get(name) for name in registry.names]
        batch = assess_batch(entries, questions)
        for entry, batched in zip(entries, batch):
            scalar = assess(entry, questions)
            assert batched.performances == scalar.performances
            assert batched.missing_attributes == scalar.missing_attributes

    def test_empty_registry(self):
        assert assess_batch([], CQS) == ()

    def test_one_pass_table_construction(self):
        entries = self._pool()
        assessments, table = batch_assessment_table(entries, CQS)
        reference = assessment_table([assess(e, CQS) for e in entries])
        assert table.alternative_names == reference.alternative_names
        assert len(table.attribute_names) == 14
        for alt in table.alternative_names:
            for attr in table.attribute_names:
                a = table[alt].performance(attr)
                b = reference[alt].performance(attr)
                assert (a is MISSING) == (b is MISSING)
                if a is not MISSING:
                    assert a == b


class TestAssessmentTable:
    def test_bundles_into_performance_table(self):
        specs = [
            OntologySpec("A", seed=1, covered_cqs=(CQS[0],)),
            OntologySpec("B", seed=2, covered_cqs=CQS and tuple(CQS)),
        ]
        assessments = [assess(generate(s), CQS) for s in specs]
        table = assessment_table(assessments)
        assert table.alternative_names == ("A", "B")
        assert len(table.attribute_names) == 14

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assessment_table([])
