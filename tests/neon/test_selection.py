"""Tests for the NeOn selection rule (coverage-threshold stopping)."""

import pytest

from repro.neon.selection import SelectionResult, select_for_coverage


def cov(**sets):
    return {name: frozenset(ids) for name, ids in sets.items()}


class TestSelectForCoverage:
    def test_stops_at_threshold(self):
        result = select_for_coverage(
            ["a", "b", "c"],
            cov(a={"1", "2"}, b={"3"}, c={"4"}),
            total_cqs=4,
            threshold=0.75,
        )
        assert result.selected == ("a", "b")
        assert result.reached_threshold
        assert result.coverage_ratio == pytest.approx(0.75)

    def test_overlapping_coverage_not_double_counted(self):
        result = select_for_coverage(
            ["a", "b", "c"],
            cov(a={"1", "2"}, b={"1", "2"}, c={"3"}),
            total_cqs=4,
            threshold=0.75,
        )
        assert result.selected == ("a", "b", "c")
        assert result.covered_cqs == ("1", "2", "3")

    def test_never_reaching_threshold(self):
        result = select_for_coverage(
            ["a", "b"],
            cov(a={"1"}, b={"2"}),
            total_cqs=10,
            threshold=0.9,
        )
        assert not result.reached_threshold
        assert result.selected == ("a", "b")

    def test_max_candidates_cap(self):
        result = select_for_coverage(
            ["a", "b", "c"],
            cov(a={"1"}, b={"2"}, c={"3"}),
            total_cqs=3,
            threshold=1.0,
            max_candidates=2,
        )
        assert result.selected == ("a", "b")
        assert not result.reached_threshold

    def test_missing_coverage_info(self):
        with pytest.raises(KeyError):
            select_for_coverage(["a", "x"], cov(a={"1"}), total_cqs=2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            select_for_coverage(["a"], cov(a={"1"}), total_cqs=0)
        with pytest.raises(ValueError):
            select_for_coverage(["a"], cov(a={"1"}), total_cqs=2, threshold=1.5)


class TestCaseStudySelection:
    def test_paper_rule_selects_exactly_top_five(self, case_registry):
        """§V: the five best-ranked cover > 70 %, so five are selected."""
        from repro.casestudy.cqs import m3_competency_questions
        from repro.casestudy.names import TOP_FIVE
        from repro.casestudy.preferences import paper_weight_system
        from repro.neon.pipeline import ReusePipeline

        pipeline = ReusePipeline(
            case_registry,
            m3_competency_questions(),
            weights=paper_weight_system(),
        )
        report = pipeline.run("multimedia ontology", integrate_selection=False)
        assert report.selection.selected == TOP_FIVE
        assert report.selection.reached_threshold
        assert report.selection.coverage_ratio > 0.70

    def test_four_best_are_not_enough(self, case_registry):
        from repro.casestudy.cqs import covered_cq_ids, m3_competency_questions
        from repro.casestudy.names import TOP_FIVE

        union = frozenset().union(*(covered_cq_ids(n) for n in TOP_FIVE[:4]))
        assert len(union) / len(m3_competency_questions()) < 0.70
