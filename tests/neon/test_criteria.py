"""Tests for the criteria catalogue and Fig. 1 hierarchy builder."""

import pytest

from repro.core.scales import ContinuousScale, DiscreteScale
from repro.core.utility import DiscreteUtility, PiecewiseLinearUtility
from repro.neon.criteria import (
    ATTRIBUTE_IDS,
    CRITERIA,
    CRITERIA_BY_ID,
    OBJECTIVES,
    PRECISE_BEST_ATTRIBUTES,
    build_hierarchy,
    default_scales,
    default_utilities,
)


class TestCatalogue:
    def test_fourteen_criteria(self):
        assert len(CRITERIA) == 14
        assert len(ATTRIBUTE_IDS) == 14
        assert len(set(ATTRIBUTE_IDS)) == 14

    def test_branch_sizes_match_fig1(self):
        by_branch = {}
        for criterion in CRITERIA:
            by_branch.setdefault(criterion.branch, []).append(criterion)
        assert [len(by_branch[o]) for o in OBJECTIVES] == [2, 3, 4, 5]

    def test_lookup(self):
        assert CRITERIA_BY_ID["purpose_reliability"].short == "Purpose Rel"

    def test_only_funct_requirements_continuous(self):
        continuous = [c.attribute for c in CRITERIA if c.levels is None]
        assert continuous == ["functional_requirements"]


class TestHierarchy:
    def test_structure(self):
        h = build_hierarchy()
        assert h.root.name == "Reuse Ontology"
        assert tuple(c.name for c in h.root.children) == OBJECTIVES
        assert h.attribute_names == ATTRIBUTE_IDS

    def test_attributes_under_branches(self):
        h = build_hierarchy()
        assert h.attributes_under("Understandability") == (
            "documentation_quality", "external_knowledge", "code_clarity",
        )


class TestScalesAndUtilities:
    def test_scales(self):
        scales = default_scales()
        assert isinstance(scales["functional_requirements"], ContinuousScale)
        assert scales["functional_requirements"].maximum == 3.0
        for attr in ATTRIBUTE_IDS:
            if attr != "functional_requirements":
                assert isinstance(scales[attr], DiscreteScale)
                assert len(scales[attr]) == 4

    def test_utilities_shapes(self):
        utilities = default_utilities()
        assert isinstance(utilities["functional_requirements"], PiecewiseLinearUtility)
        for attr in ATTRIBUTE_IDS:
            if attr != "functional_requirements":
                assert isinstance(utilities[attr], DiscreteUtility)

    def test_purpose_keeps_precise_best(self):
        """Fig. 4 anchors purpose's best level at exactly 1.0."""
        utilities = default_utilities()
        purpose = utilities["purpose_reliability"]
        assert purpose.by_level[-1].is_point
        assert purpose.by_level[-1].lower == pytest.approx(1.0)

    def test_other_criteria_imprecise_best(self):
        utilities = default_utilities()
        naming = utilities["naming_conventions"]
        assert not naming.by_level[-1].is_point
        assert naming.by_level[-1].lower == pytest.approx(0.8)

    def test_precise_best_configurable(self):
        utilities = default_utilities(precise_best_attributes=())
        purpose = utilities["purpose_reliability"]
        assert not purpose.by_level[-1].is_point
        assert "purpose_reliability" in PRECISE_BEST_ATTRIBUTES
