"""Tests for the end-to-end NeOn reuse pipeline."""

import pytest

from repro.casestudy.cqs import m3_competency_questions
from repro.casestudy.preferences import paper_weight_system
from repro.neon.pipeline import ReusePipeline
from repro.ontology.model import Ontology


@pytest.fixture(scope="module")
def pipeline(case_registry_module):
    return ReusePipeline(
        case_registry_module,
        m3_competency_questions(),
        target=Ontology("http://repro.example.org/m3", label="M3"),
        weights=paper_weight_system(),
    )


@pytest.fixture(scope="module")
def case_registry_module():
    from repro.casestudy.corpus import multimedia_registry

    return multimedia_registry()


class TestRun:
    def test_full_run(self, pipeline):
        report = pipeline.run("multimedia ontology")
        assert len(report.hits) == 23
        assert len(report.assessments) == 23
        assert report.evaluation.best.name == "Media Ontology"
        assert report.selected == (
            "Media Ontology", "Boemie VDO", "COMM", "SAPO", "DIG35",
        )
        assert report.network is not None
        assert len(report.network.imports) == 5

    def test_summary_mentions_key_facts(self, pipeline):
        report = pipeline.run("multimedia ontology")
        text = report.summary()
        assert "Media Ontology" in text
        assert "selected 5" in text

    def test_query_narrowing(self, pipeline):
        report = pipeline.run("multimedia ontology", max_candidates=10,
                              integrate_selection=False)
        assert len(report.assessments) == 10

    def test_min_score_can_empty_the_hits(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.run("zzzunmatchable quixotic", min_score=0.9)

    def test_screening_optional(self, pipeline):
        without = pipeline.run("multimedia ontology", integrate_selection=False)
        assert without.screening is None

    def test_no_target_skips_integration(self, case_registry_module):
        pipeline = ReusePipeline(
            case_registry_module,
            m3_competency_questions(),
            weights=paper_weight_system(),
        )
        report = pipeline.run("multimedia ontology")
        assert report.network is None and report.merge_report is None


class TestConstruction:
    def test_needs_questions(self, case_registry_module):
        with pytest.raises(ValueError):
            ReusePipeline(case_registry_module, [])

    def test_default_weights_are_uniform(self, case_registry_module):
        pipeline = ReusePipeline(
            case_registry_module, m3_competency_questions()
        )
        averages = pipeline.weights.attribute_averages()
        assert sum(averages.values()) == pytest.approx(1.0)
