"""Shared fixtures.

Expensive artefacts (the case-study problem, its additive model, the
synthetic corpus, a Monte Carlo run) are built once per session; tests
must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.casestudy.corpus import multimedia_registry
from repro.casestudy.problem import multimedia_problem
from repro.core.hierarchy import Hierarchy, ObjectiveNode
from repro.core.interval import Interval
from repro.core.model import AdditiveModel
from repro.core.montecarlo import simulate
from repro.core.performance import Alternative, PerformanceTable
from repro.core.problem import DecisionProblem
from repro.core.scales import MISSING, ContinuousScale, linguistic_0_3
from repro.core.utility import banded_discrete_utility, linear_utility
from repro.core.weights import WeightSystem


@pytest.fixture(scope="session")
def case_problem() -> DecisionProblem:
    return multimedia_problem()


@pytest.fixture(scope="session")
def case_model(case_problem) -> AdditiveModel:
    return AdditiveModel(case_problem)


@pytest.fixture(scope="session")
def case_registry():
    return multimedia_registry()


@pytest.fixture(scope="session")
def case_mc(case_model):
    return simulate(
        case_model,
        method="intervals",
        n_simulations=10_000,
        seed=2012,
        sample_utilities="missing",
    )


def make_small_problem(
    missing_cell: bool = False,
    name: str = "laptops",
) -> DecisionProblem:
    """A compact 3-alternative, 3-attribute problem used across tests.

    Attributes: price (continuous, less is better), battery (0-3
    linguistic), support (0-3 linguistic).  Alternative "mid" may carry
    a missing support performance.
    """
    price = ContinuousScale("price", 300.0, 1500.0, ascending=False, unit="EUR")
    battery = linguistic_0_3("battery")
    support = linguistic_0_3("support")
    scales = {"price": price, "battery": battery, "support": support}

    table = PerformanceTable(
        scales,
        [
            Alternative("cheap", {"price": 400.0, "battery": 1, "support": 1}),
            Alternative(
                "mid",
                {
                    "price": 800.0,
                    "battery": 2,
                    "support": MISSING if missing_cell else 2,
                },
            ),
            Alternative("premium", {"price": 1400.0, "battery": 3, "support": 3}),
        ],
    )
    root = ObjectiveNode(
        "overall",
        children=[
            ObjectiveNode("cost", attribute="price"),
            ObjectiveNode(
                "quality",
                children=[
                    ObjectiveNode("battery life", attribute="battery"),
                    ObjectiveNode("vendor support", attribute="support"),
                ],
            ),
        ],
    )
    hierarchy = Hierarchy(root)
    utilities = {
        "price": linear_utility(price),
        "battery": banded_discrete_utility(battery),
        "support": banded_discrete_utility(support),
    }
    weights = WeightSystem(
        hierarchy,
        {
            "cost": Interval(0.3, 0.5),
            "quality": Interval(0.5, 0.7),
            "battery life": Interval(0.4, 0.6),
            "vendor support": Interval(0.4, 0.6),
        },
    )
    return DecisionProblem(hierarchy, table, utilities, weights, name=name)


@pytest.fixture()
def small_problem() -> DecisionProblem:
    return make_small_problem()


@pytest.fixture()
def small_problem_missing() -> DecisionProblem:
    return make_small_problem(missing_cell=True)
