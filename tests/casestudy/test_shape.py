"""The reproduction's headline shape tests (DESIGN.md success criteria).

Every claim the paper's evaluation section makes is asserted here
against the calibrated case study: the Fig. 6 ranking, the near-ties,
the Fig. 8 stability pattern, the §V screening outcome, and the
Figs. 9-10 Monte Carlo findings.
"""

import numpy as np
import pytest

from repro.casestudy.names import CANDIDATE_NAMES, RANKED_NAMES, TOP_FIVE
from repro.casestudy.paper_results import (
    DISCARDED_ADOPTED,
    EVER_BEST_PAPER,
    FIG6_AVG_PAPER,
    FIG10_PAPER,
    TOP_FIVE_PAPER,
)
from repro.core.dominance import screen
from repro.core.model import evaluate
from repro.core.ranking import kendall_tau, top_k_overlap
from repro.core.stability import stability_report


class TestFig6Ranking:
    def test_exact_rank_order(self, case_problem):
        """The ranking reproduces Fig. 6 / Fig. 10 order exactly."""
        assert evaluate(case_problem).names_by_rank == RANKED_NAMES

    def test_media_ontology_best(self, case_problem):
        assert evaluate(case_problem).best.name == "Media Ontology"

    def test_top_three_nearly_tied(self, case_problem):
        """§IV: 'the average utility for the three best-ranked
        alternatives is almost the same'."""
        ev = evaluate(case_problem)
        avgs = [ev.average_of(n) for n in RANKED_NAMES[:3]]
        assert max(avgs) - min(avgs) < 0.02

    def test_top_eight_within_tenth(self, case_problem):
        """§IV: 'the utility difference among the eight best-ranked
        candidates is less than 0.1'."""
        ev = evaluate(case_problem)
        avgs = [ev.average_of(n) for n in RANKED_NAMES[:8]]
        assert max(avgs) - min(avgs) < 0.1

    def test_bands_ordered_and_overlapping(self, case_problem):
        """§IV: 'the output utility intervals are very overlapped'."""
        ev = evaluate(case_problem)
        for row in ev:
            assert row.minimum <= row.average <= row.maximum
        assert ev.overlap_count() == len(ev) - 1

    def test_maximum_exceeds_one_for_leader(self, case_problem):
        """Upper weight bounds are not renormalised, so the maximum
        overall utility may exceed 1 (Fig. 6 shows up to 1.1666)."""
        ev = evaluate(case_problem)
        assert ev.best.maximum > 1.0

    def test_rank_agreement_with_published_averages(self, case_problem):
        """Where Fig. 6 averages are legible, our ranking induces the
        same order (values differ; the matrix is reconstructed)."""
        ev = evaluate(case_problem)
        published = [
            (name, avg) for name, avg in FIG6_AVG_PAPER.items() if avg is not None
        ]
        published.sort(key=lambda pair: -pair[1])
        ours = [n for n in ev.names_by_rank if n in dict(published)]
        tau = kendall_tau(ours, [n for n, _ in published])
        assert tau > 0.98


class TestFig7Understandability:
    def test_top_cluster(self, case_problem):
        """Boemie VDO and COMM sit in the Understandability top
        cluster; M3O lands mid-field (see EXPERIMENTS.md for why the
        printed Fig. 7 values cannot be matched exactly)."""
        ev = evaluate(case_problem, "Understandability")
        best_value = ev.rows[0].average
        top_names = {r.name for r in ev if r.average >= best_value - 1e-9}
        assert {"Boemie VDO", "COMM", "Media Ontology", "DIG35"} <= top_names
        m3o_rank = ev.rank_of("M3O")
        assert 5 <= m3o_rank <= 15

    def test_only_three_attributes_evaluated(self, case_problem):
        sub = case_problem.restricted_to("Understandability")
        assert set(sub.attribute_names) == {
            "documentation_quality", "external_knowledge", "code_clarity",
        }


class TestFig8Stability:
    def test_exactly_funct_and_naming_bounded(self, case_problem):
        report = stability_report(case_problem, mode="best")
        assert set(report.sensitive_objectives()) == {
            "N. Functional Requirements",
            "Adequacy naming conventions",
        }

    def test_sixteen_full_intervals(self, case_problem):
        report = stability_report(case_problem, mode="best")
        assert len(report.insensitive_objectives()) == 16

    def test_bounded_intervals_contain_current_weight(self, case_problem):
        report = stability_report(case_problem, mode="best")
        for objective in report.sensitive_objectives():
            interval = report.intervals[objective]
            current = case_problem.weights.local_average(objective)
            assert interval.contains(current, tol=1e-9)


class TestScreening:
    def test_twenty_survive(self, case_model):
        """§V: '20 out of the 23 MM ontologies are non-dominated and
        potentially optimal'."""
        result = screen(case_model)
        assert len(result.non_dominated) == 20
        assert len(result.potentially_optimal) == 20

    def test_discarded_set(self, case_model):
        result = screen(case_model)
        assert set(result.discarded) == set(DISCARDED_ADOPTED)


class TestFig9And10MonteCarlo:
    def test_only_media_and_boemie_ever_best(self, case_mc):
        """§V: 'Only two MM ontologies — Media Ontology and Boemie VDO
        — were ranked best across all 10,000 simulations'."""
        assert set(case_mc.ever_best()) == set(EVER_BEST_PAPER)

    def test_top_five_by_mean_rank(self, case_mc):
        assert case_mc.top_k_by_mean(5) == TOP_FIVE_PAPER

    def test_top_five_fluctuate_at_most_two(self, case_mc):
        """§V: 'the rankings for the best five MM ontologies fluctuate
        by at most two positions throughout the simulation'."""
        assert case_mc.max_fluctuation(TOP_FIVE) <= 2

    def test_bottom_candidates_pinned(self, case_mc):
        """Fig. 10: the discarded candidates sit at fixed bottom ranks
        with (near-)zero standard deviation."""
        assert case_mc.statistics_for("MPEG7 Ontology").std < 0.1
        assert case_mc.statistics_for("Photography Ontology").std < 0.2
        assert case_mc.statistics_for("MPEG7 Ontology").mode == 23
        assert case_mc.statistics_for("Photography Ontology").mode == 22
        # Kanzaki and Open Drama trade places inside the paper's own
        # 19-21 band (Fig. 10 ranges): the mode lands on 20 or 21.
        assert case_mc.statistics_for("Kanzaki Music").mode in (20, 21)

    def test_mode_order_close_to_paper(self, case_mc):
        """Fig. 10 mode columns: ours within one position of the
        published mode for at least 20 of 23 candidates."""
        close = 0
        for row in FIG10_PAPER:
            ours = case_mc.statistics_for(row.name).mode
            if abs(ours - row.mode) <= 1:
                close += 1
        assert close >= 20

    def test_fluctuating_rows_have_missing_cells(self, case_problem, case_mc):
        """Fig. 10's pattern: strong rank variance concentrates on the
        candidates with unknown performances (fully-known neighbours
        pick up only induced jitter)."""
        missing_rows = {name for name, _ in case_problem.table.missing_cells()}
        for name in CANDIDATE_NAMES:
            std = case_mc.statistics_for(name).std
            if std > 1.5:
                assert name in missing_rows, name
        # and the wobbliest candidates really do wobble
        assert max(
            case_mc.statistics_for(n).std for n in missing_rows
        ) > 1.5

    def test_rank_matrix_valid(self, case_mc):
        sorted_rows = np.sort(case_mc.ranks, axis=1)
        assert np.array_equal(
            sorted_rows,
            np.tile(np.arange(1, 24), (case_mc.n_simulations, 1)),
        )

    def test_mc_agrees_with_average_ranking_on_top5(self, case_mc, case_problem):
        """§V: the boxplot top five 'match up with the results of the
        average overall utilities'."""
        ev = evaluate(case_problem)
        assert top_k_overlap(ev.names_by_rank, case_mc.names_by_mean_rank(), 5) == 5


class TestOtherSimulationClasses:
    @pytest.mark.parametrize("method", ["random", "rank_order"])
    def test_other_classes_keep_media_or_boemie_on_top(self, case_problem, method):
        from repro.core.montecarlo import simulate

        result = simulate(
            case_problem, method=method, n_simulations=2000, seed=5,
            sample_utilities="missing",
        )
        top_two = set(result.names_by_mean_rank()[:2])
        assert top_two & {"Media Ontology", "Boemie VDO"}
