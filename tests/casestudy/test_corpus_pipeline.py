"""Tests for the synthetic corpus and the pipeline-derived Fig. 2.

The strongest integration guarantee in the repository: running the real
NeOn assess activity over the generated corpus reproduces the shipped
23 x 14 matrix cell-for-cell (after masking the survey's documented
information gaps).
"""

import pytest

from repro.casestudy.corpus import (
    UNKNOWN_CELLS,
    assessed_performance_table,
    build_spec,
    multimedia_registry,
)
from repro.casestudy.names import CANDIDATE_NAMES
from repro.casestudy.performances import performance_table
from repro.core.scales import MISSING


@pytest.fixture(scope="module")
def derived(case_registry_module):
    return assessed_performance_table(case_registry_module)


@pytest.fixture(scope="module")
def case_registry_module():
    return multimedia_registry()


class TestSpecs:
    def test_spec_per_candidate(self):
        for name in CANDIDATE_NAMES:
            spec = build_spec(name)
            assert spec.name == name
            assert spec.n_classes >= 28

    def test_unknown_candidate(self):
        with pytest.raises(KeyError):
            build_spec("Unknown")

    def test_specs_deterministic(self):
        assert build_spec("COMM") == build_spec("COMM")


class TestRegistry:
    def test_all_candidates_registered(self, case_registry_module):
        assert set(case_registry_module.names) == set(CANDIDATE_NAMES)

    def test_search_finds_everything_for_domain_query(self, case_registry_module):
        hits = case_registry_module.search("multimedia ontology")
        assert len(hits) == 23


class TestDerivedMatrix:
    def test_equals_shipped_matrix(self, derived):
        shipped = performance_table()
        for name in CANDIDATE_NAMES:
            for attr in shipped.attribute_names:
                a = derived[name].performance(attr)
                b = shipped[name].performance(attr)
                if b is MISSING:
                    assert a is MISSING, (name, attr)
                else:
                    assert a is not MISSING, (name, attr)
                    assert float(a) == pytest.approx(float(b)), (name, attr)

    def test_unknown_cells_match_matrix_nones(self):
        shipped = performance_table()
        from_matrix = {
            (alt.name, attr)
            for alt in shipped.alternatives
            for attr in shipped.attribute_names
            if alt.is_missing(attr)
        }
        assert from_matrix == set(UNKNOWN_CELLS)

    def test_derived_problem_ranks_like_shipped(self, derived, case_problem):
        from repro.core.model import evaluate
        from repro.core.problem import DecisionProblem

        problem = DecisionProblem(
            case_problem.hierarchy,
            derived,
            case_problem.utilities,
            case_problem.weights,
            name="derived",
        )
        assert (
            evaluate(problem).names_by_rank
            == evaluate(case_problem).names_by_rank
        )
