"""Tests pinning the case-study data: names, CQs, anchors, weights."""

import pytest

from repro.casestudy.cqs import (
    CQ_WINDOWS,
    M3_CQ_TERMS,
    covered_cq_ids,
    expected_value_t,
    m3_competency_questions,
)
from repro.casestudy.names import CANDIDATE_NAMES, RANKED_NAMES, SHORT_NAMES, TOP_FIVE
from repro.casestudy.paper_results import FIG5_PAPER
from repro.casestudy.performances import FIG2_ANCHORS, RAW_MATRIX, performance_table
from repro.casestudy.preferences import FIG5_WEIGHTS, paper_weight_system
from repro.neon.criteria import ATTRIBUTE_IDS
from repro.ontology.cq import normalise_term
from repro.ontology.generator import DOMAIN_TERMS
from repro.ontology.metrics import STANDARD_TERMS


class TestNames:
    def test_twenty_three_candidates(self):
        assert len(CANDIDATE_NAMES) == 23
        assert set(CANDIDATE_NAMES) == set(RANKED_NAMES)

    def test_top_five(self):
        assert TOP_FIVE == (
            "Media Ontology", "Boemie VDO", "COMM", "SAPO", "DIG35",
        )

    def test_short_names_complete(self):
        assert set(SHORT_NAMES) == set(CANDIDATE_NAMES)


class TestCompetencyQuestions:
    def test_one_hundred_unique_terms(self):
        assert len(M3_CQ_TERMS) == 100
        stems = {normalise_term(t) for t in M3_CQ_TERMS}
        assert len(stems) == 100

    def test_terms_disjoint_from_generator_pools(self):
        """Uniqueness guarantee: a CQ term can only enter a candidate's
        lexicon through that candidate covering the CQ."""
        stems = {normalise_term(t) for t in M3_CQ_TERMS}
        domain_stems = set()
        for term in DOMAIN_TERMS:
            domain_stems.add(normalise_term(term.lower()))
        standard_stems = set()
        for term in STANDARD_TERMS:
            from repro.ontology.metrics import split_identifier

            for token in split_identifier(term):
                standard_stems.add(normalise_term(token))
        assert not stems & domain_stems
        assert not stems & standard_stems

    def test_windows_cover_all_candidates(self):
        assert set(CQ_WINDOWS) == set(CANDIDATE_NAMES)

    def test_windows_inside_range(self):
        for name, (start, length) in CQ_WINDOWS.items():
            assert 1 <= start and start + length - 1 <= 100, name
            assert length >= 1

    def test_value_t_matches_matrix(self):
        index = ATTRIBUTE_IDS.index("functional_requirements")
        for name in CANDIDATE_NAMES:
            assert RAW_MATRIX[name][index] == pytest.approx(
                expected_value_t(name)
            )

    def test_covered_ids_sizes(self):
        for name, (_, length) in CQ_WINDOWS.items():
            assert len(covered_cq_ids(name)) == length

    def test_question_objects(self):
        questions = m3_competency_questions()
        assert len(questions) == 100
        assert questions[0].cq_id == "CQ001"
        assert questions[0].key_terms == (normalise_term(M3_CQ_TERMS[0]),)

    def test_unknown_candidate(self):
        with pytest.raises(KeyError):
            covered_cq_ids("Unknown Ontology")


class TestMatrix:
    def test_fig2_anchors_honoured(self):
        """Every legible Fig. 2 cell appears verbatim in the matrix."""
        for name, cells in FIG2_ANCHORS.items():
            row = RAW_MATRIX[name]
            for attr, value in cells.items():
                idx = ATTRIBUTE_IDS.index(attr)
                assert row[idx] == pytest.approx(value), (name, attr)

    def test_rows_complete(self):
        for name in CANDIDATE_NAMES:
            assert len(RAW_MATRIX[name]) == 14

    def test_test_availability_all_zero(self):
        idx = ATTRIBUTE_IDS.index("test_availability")
        assert all(RAW_MATRIX[n][idx] == 0 for n in CANDIDATE_NAMES)

    def test_table_builds_and_validates(self):
        table = performance_table()
        assert len(table) == 23
        assert len(table.attributes_with_missing()) > 0

    def test_bottom_three_fully_known(self):
        """The discarded candidates carry no missing cells — that is
        what lets the screening dominate them."""
        for name in ("Kanzaki Music", "Photography Ontology", "MPEG7 Ontology"):
            assert all(cell is not None for cell in RAW_MATRIX[name]), name


class TestFig5Weights:
    def test_averages_match_paper_exactly(self):
        ws = paper_weight_system()
        averages = ws.attribute_averages()
        for attr, (_, avg, _) in FIG5_WEIGHTS.items():
            assert averages[attr] == pytest.approx(avg, abs=1e-9), attr

    def test_averages_sum_to_one(self):
        total = sum(paper_weight_system().attribute_averages().values())
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_bounds_within_print_precision(self):
        ws = paper_weight_system()
        intervals = ws.attribute_weights()
        for attr, (low, _, upp) in FIG5_WEIGHTS.items():
            iv = intervals[attr]
            assert iv.lower == pytest.approx(low, abs=1.5e-3), attr
            assert iv.upper == pytest.approx(upp, abs=1.5e-3), attr

    def test_bound_sums_match_paper(self):
        """Sum of lowers ~0.806, sum of uppers ~1.193 — why Fig. 6's
        maxima exceed 1."""
        intervals = paper_weight_system().attribute_weights()
        assert sum(iv.lower for iv in intervals.values()) == pytest.approx(0.806, abs=2e-3)
        assert sum(iv.upper for iv in intervals.values()) == pytest.approx(1.193, abs=2e-3)

    def test_paper_results_agree_with_preferences(self):
        assert FIG5_PAPER == FIG5_WEIGHTS
