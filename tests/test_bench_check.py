"""Gates for the benchmark-trajectory checker (tools/check_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_bench", ROOT / "tools" / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


@pytest.fixture(scope="module")
def floors():
    return check_bench.load_floors()


class TestCommittedFloors:
    def test_floors_file_covers_every_schema(self, floors):
        assert check_bench.check_floors_file(floors) == []
        assert set(floors) == set(check_bench.SCHEMAS)

    def test_group_floor_tracks_the_8x_gate(self, floors):
        # the committed trajectory floor must sit at or above the
        # benchmark's own hard gate — otherwise the regression check
        # is weaker than the bench itself
        assert floors["BENCH_group.json"]["speedup"] >= 8.0

    def test_incomplete_floors_rejected(self, floors):
        broken = {k: v for k, v in floors.items() if k != "BENCH_group.json"}
        errors = check_bench.check_floors_file(broken)
        assert any("no committed floor" in e for e in errors)

    def test_unknown_floor_rejected(self, floors):
        extra = dict(floors)
        extra["BENCH_mystery.json"] = {"speedup": 1.0}
        errors = check_bench.check_floors_file(extra)
        assert any("unknown artifact" in e for e in errors)


class TestArtifactValidation:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def group_payload(self, **overrides):
        payload = {
            "n_workspaces": 200,
            "n_members": 20,
            "speedup": 18.0,
            "identical_to_scalar_loop": True,
            "min_speedup_floor": 8.0,
        }
        payload.update(overrides)
        return payload

    def test_valid_artifact_passes(self, tmp_path, floors):
        path = self.write(tmp_path, "BENCH_group.json", self.group_payload())
        assert check_bench.check_artifact(path, floors) == []

    def test_unknown_artifact_fails(self, tmp_path):
        path = self.write(tmp_path, "BENCH_mystery.json", {})
        errors = check_bench.check_artifact(path)
        assert errors and "unknown benchmark artifact" in errors[0]

    def test_missing_key_fails(self, tmp_path):
        payload = self.group_payload()
        del payload["speedup"]
        path = self.write(tmp_path, "BENCH_group.json", payload)
        errors = check_bench.check_artifact(path)
        assert any("missing required key 'speedup'" in e for e in errors)

    def test_wrong_type_fails(self, tmp_path):
        path = self.write(
            tmp_path,
            "BENCH_group.json",
            self.group_payload(identical_to_scalar_loop="yes"),
        )
        errors = check_bench.check_artifact(path)
        assert any("must be bool" in e for e in errors)

    def test_false_correctness_flag_fails(self, tmp_path):
        path = self.write(
            tmp_path,
            "BENCH_group.json",
            self.group_payload(identical_to_scalar_loop=False),
        )
        errors = check_bench.check_artifact(path)
        assert any("correctness flag" in e for e in errors)

    def test_below_declared_floor_fails(self, tmp_path):
        path = self.write(
            tmp_path, "BENCH_group.json", self.group_payload(speedup=7.5)
        )
        errors = check_bench.check_artifact(path)
        assert any("below the declared floor" in e for e in errors)

    def test_malformed_json_fails(self, tmp_path):
        path = tmp_path / "BENCH_group.json"
        path.write_text("{not json")
        errors = check_bench.check_artifact(path)
        assert errors and "unreadable" in errors[0]


class TestRegressionGate:
    def test_regression_beyond_20_percent_fails(self, tmp_path, floors):
        baseline = floors["BENCH_group.json"]["speedup"]
        fresh = {
            "n_workspaces": 200,
            "n_members": 20,
            "speedup": baseline * 0.7,  # 30% below the committed floor
            "identical_to_scalar_loop": True,
            "min_speedup_floor": 1.0,  # keeps the declared-floor gate quiet
        }
        path = tmp_path / "BENCH_group.json"
        path.write_text(json.dumps(fresh))
        errors = check_bench.check_artifact(path, floors)
        assert any("regressed more than 20%" in e for e in errors)

    def test_small_regression_within_tolerance_passes(self, tmp_path, floors):
        baseline = floors["BENCH_group.json"]["speedup"]
        fresh = {
            "n_workspaces": 200,
            "n_members": 20,
            "speedup": baseline * 0.9,
            "identical_to_scalar_loop": True,
            "min_speedup_floor": 8.0,
        }
        path = tmp_path / "BENCH_group.json"
        path.write_text(json.dumps(fresh))
        assert check_bench.check_artifact(path, floors) == []

    def test_ci_mode_requires_every_artifact(self, tmp_path, floors):
        errors = check_bench.check_directory(tmp_path, floors)
        missing = {e.split(":")[0] for e in errors}
        assert missing == set(check_bench.SCHEMAS)

    def test_self_check_mode_tolerates_absent_artifacts(
        self, tmp_path, floors
    ):
        assert (
            check_bench.check_directory(tmp_path, floors, require_all=False)
            == []
        )

    def test_cli_self_check_passes(self):
        # validates the floors file plus whatever artifacts exist locally
        assert check_bench.main([]) == 0

    def test_fresh_group_artifact_holds_the_committed_floor(self, floors):
        """The artifact this PR's benchmark run produced clears its floor."""
        artifact = ROOT / "BENCH_group.json"
        if not artifact.is_file():
            pytest.skip("BENCH_group.json not generated in this checkout")
        assert check_bench.check_artifact(artifact, floors) == []
