"""Tests for tables, plots and the per-figure renderers."""

import pytest

from repro.core.montecarlo import BoxplotSummary
from repro.reporting import figures
from repro.reporting.plots import interval_bars, rank_boxplots
from repro.reporting.tables import render_table, to_csv


class TestRenderTable:
    def test_alignment_and_precision(self):
        text = render_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2.0]], precision=2
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text and "2.00" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_none_and_bool_cells(self):
        text = render_table(["x", "y"], [[None, True]])
        assert "yes" in text

    def test_deterministic(self):
        rows = [["a", 1.0], ["b", 2.0]]
        assert render_table(["n", "v"], rows) == render_table(["n", "v"], rows)


class TestCsv:
    def test_quoting(self):
        out = to_csv(["name"], [['tricky,"value"']])
        assert '"tricky,""value"""' in out

    def test_header_row(self):
        out = to_csv(["a", "b"], [[1, 2]])
        assert out.splitlines()[0] == "a,b"


class TestPlots:
    def test_interval_bars(self):
        text = interval_bars(
            [("alpha", 0.1, 0.2, 0.4), ("beta", 0.0, 0.5, 1.0)], width=30
        )
        assert "alpha" in text and "o" in text and "=" in text

    def test_interval_bars_validation(self):
        with pytest.raises(ValueError):
            interval_bars([])
        with pytest.raises(ValueError):
            interval_bars([("x", 0.5, 0.2, 0.8)])

    def test_rank_boxplots(self):
        text = rank_boxplots(
            [
                BoxplotSummary("one", 1, 1, 1, 2, 3),
                BoxplotSummary("two", 2, 3, 3, 3, 4),
            ],
            n_alternatives=5,
        )
        assert "M" in text and "#" in text

    def test_rank_boxplots_empty(self):
        with pytest.raises(ValueError):
            rank_boxplots([])


class TestFigureRenderers:
    def test_figure_1_tree(self, case_problem):
        text = figures.figure_1(case_problem)
        assert "Reuse Cost" in text and "avg w" in text

    def test_figure_2_table(self, case_problem):
        text = figures.figure_2(case_problem)
        assert "COMM" in text and "?" in text  # missing cells rendered

    def test_figure_3_utility(self, case_problem):
        text = figures.figure_3(case_problem)
        assert "ValueT" in text and "missing" in text

    def test_figure_4_levels(self, case_problem):
        text = figures.figure_4(case_problem)
        assert "unknown" in text and "high" in text

    def test_figure_5_weights(self, case_problem):
        text = figures.figure_5(case_problem)
        assert "Financ" in text or "Financial" in text
        assert "0.095" in text

    def test_figure_6_ranking(self, case_problem):
        text = figures.figure_6(case_problem)
        assert text.index("Media Ontology") < text.index("MPEG7 Ontology")

    def test_figure_7_subtree(self, case_problem):
        text = figures.figure_7(case_problem)
        assert "Boemie" in text

    def test_figure_8_stability(self, case_problem):
        text = figures.figure_8(case_problem)
        assert text.count("BOUNDED") == 2

    def test_figures_9_and_10_share_result(self, case_problem, case_mc):
        nine = figures.figure_9(case_problem, case_mc)
        ten = figures.figure_10(case_problem, case_mc)
        assert "Media Ontology" in nine
        assert "mode" in ten and "std" in ten

    def test_screening_summary(self, case_problem):
        text = figures.screening_summary(case_problem)
        assert "20 of 23" in text
        assert "Kanzaki Music" in text
