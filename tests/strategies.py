"""Hypothesis strategies built on the registry generator.

The strategies sample :class:`repro.core.genreg.RegistrySpec` values
(the *spec* space), then let :func:`repro.core.genreg.generate_problem`
turn a spec + case index into a concrete
:class:`~repro.core.problem.DecisionProblem` — so Hypothesis explores
the declarative sweep space while all concrete randomness stays inside
the generator's deterministic PCG64 streams.  Shrinking therefore
shrinks *specs* (fewer alternatives, flatter trees, precise weights),
mirroring the fuzz harness's own reducer.

A fixed ``ci`` profile (derandomised, bounded example count) is
registered at import; set ``HYPOTHESIS_PROFILE=ci`` to load it — the
CI fuzz job does.
"""

from __future__ import annotations

import os

from hypothesis import settings
from hypothesis import strategies as st

from repro.core import genreg
from repro.core.genreg import RegistrySpec

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    print_blob=True,
)
if os.environ.get("HYPOTHESIS_PROFILE") == "ci":
    settings.load_profile("ci")


def _ranges(lo_min: int, lo_max: int, hi_max: int):
    """An ``(lo, hi)`` inclusive-range strategy with ``lo <= hi``."""
    return st.integers(lo_min, lo_max).flatmap(
        lambda lo: st.tuples(st.just(lo), st.integers(lo, hi_max))
    )


@st.composite
def registry_specs(
    draw,
    max_workspaces: int = 6,
    max_alternatives: int = 8,
    max_attributes: int = 12,
):
    """A valid :class:`RegistrySpec` spanning the generator's sweep space.

    Degenerate regions (single alternative, all-missing rows,
    zero-width and near-degenerate weights) are reachable but not
    forced, so property tests see both healthy and edge-case problems.
    """
    return RegistrySpec(
        name="hyp",
        seed=draw(st.integers(0, 2**31 - 1)),
        n_workspaces=draw(st.integers(1, max_workspaces)),
        alternatives=draw(_ranges(1, max_alternatives, max_alternatives)),
        depth=draw(_ranges(1, 3, 4)),
        branching=draw(_ranges(1, 3, 4)),
        max_attributes=draw(st.integers(1, max_attributes)),
        scale_kinds=draw(
            st.sampled_from(
                [
                    ("discrete",),
                    ("continuous",),
                    ("discrete", "continuous"),
                ]
            )
        ),
        levels=draw(_ranges(2, 4, 6)),
        missing_rate=draw(st.sampled_from([0.0, 0.1, 0.3])),
        all_missing_row_rate=draw(st.sampled_from([0.0, 0.1])),
        uncertain_rate=draw(st.sampled_from([0.0, 0.2])),
        weight_style=draw(st.sampled_from(genreg._WEIGHT_STYLES)),
        weight_spread=draw(st.sampled_from([0.1, 0.5, 1.0])),
        utility_style=draw(st.sampled_from(genreg._UTILITY_STYLES)),
    )


@st.composite
def generated_problems(draw, **spec_kwargs):
    """A concrete generated :class:`DecisionProblem` (spec + case draw)."""
    spec = draw(registry_specs(**spec_kwargs))
    index = draw(st.integers(0, spec.n_workspaces - 1))
    return genreg.generate_problem(spec, index)


@st.composite
def spec_cases(draw, **spec_kwargs):
    """A ``(spec, index)`` pair — for tests that must regenerate a case."""
    spec = draw(registry_specs(**spec_kwargs))
    index = draw(st.integers(0, spec.n_workspaces - 1))
    return spec, index
