"""Registry generator throughput and determinism — the 10k sweep.

The registry generator (:mod:`repro.core.genreg`) is the standard
fixture for every stress test and the substrate of the differential
fuzz harness, so it must stay fast enough to build registry-scale
fixtures inline (10k+ workspaces per bench run) and byte-deterministic
(the fuzzer's repro files and the committed floors both depend on
regenerating exact content).  This benchmark

* writes the full ``stress-10k`` preset (10,000 workspaces) to disk
  and gates a generation-throughput floor (workspaces/second),
* asserts byte-determinism: the on-disk files match an independent
  in-memory regeneration, and the registry digest is identical across
  two passes, and
* asserts seed sensitivity: distinct seeds give distinct digests.

It emits a ``BENCH_generator.json`` trajectory artifact (uploaded by
CI).  Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_generator.py

or under pytest (``pytest benchmarks/bench_generator.py -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import genreg

N_WORKSPACES = 10_000
MIN_THROUGHPUT_WPS = 300.0
ARTIFACT = "BENCH_generator.json"
DIGEST_SAMPLE = 300


def run(n_workspaces: int = N_WORKSPACES, verbose: bool = True) -> dict:
    spec = genreg.preset("stress-10k").replace(n_workspaces=n_workspaces)

    with tempfile.TemporaryDirectory(prefix="genreg-stress-") as tmp:
        t0 = time.perf_counter()
        paths = genreg.write_registry(spec, Path(tmp))
        t_generate = time.perf_counter() - t0

        # Byte-determinism: the written files must equal an independent
        # in-memory regeneration of the same cases.
        sample = range(0, n_workspaces, max(1, n_workspaces // 25))
        files_match = all(
            paths[i].read_text()
            == json.dumps(
                genreg.generate_document(spec, i), indent=2, sort_keys=True
            )
            for i in sample
        )

    limit = min(DIGEST_SAMPLE, n_workspaces)
    digest = genreg.registry_digest(spec, limit=limit)
    deterministic = (
        files_match and digest == genreg.registry_digest(spec, limit=limit)
    )
    seeds_distinct = len(
        {
            genreg.registry_digest(spec.replace(seed=spec.seed + k), limit=25)
            for k in range(4)
        }
    ) == 4

    throughput = n_workspaces / t_generate
    result = {
        "n_workspaces": n_workspaces,
        "t_generate": t_generate,
        "throughput_wps": throughput,
        "registry_digest_sample": digest,
        "deterministic": bool(deterministic),
        "distinct_seeds_distinct": bool(seeds_distinct),
        "min_throughput_floor_wps": MIN_THROUGHPUT_WPS,
    }
    if verbose:
        print(f"workspaces               : {n_workspaces}")
        print(f"generation (write-through): {t_generate:8.2f} s")
        print(f"throughput               : {throughput:8.0f} workspaces/s")
        print(f"byte-deterministic       : {deterministic}")
        print(f"distinct seeds distinct  : {seeds_distinct}")

    assert deterministic, "generator output is not byte-deterministic"
    assert seeds_distinct, "distinct seeds did not change the registry digest"
    assert throughput >= MIN_THROUGHPUT_WPS, (
        f"expected >= {MIN_THROUGHPUT_WPS:.0f} workspaces/s, measured "
        f"{throughput:.0f}"
    )
    return result


def test_generator_throughput_and_determinism():
    result = run(N_WORKSPACES, verbose=True)
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces)
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
