"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one table/figure of the paper (or an ablation
DESIGN.md calls out), prints a paper-vs-measured summary and asserts
the reproduction's *shape* claims.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the paper-vs-measured rows inline.
"""

from __future__ import annotations

import pytest

from repro.casestudy.corpus import multimedia_registry
from repro.casestudy.problem import multimedia_problem
from repro.core.model import AdditiveModel
from repro.core.montecarlo import simulate


@pytest.fixture(scope="session")
def problem():
    return multimedia_problem()


@pytest.fixture(scope="session")
def model(problem):
    return AdditiveModel(problem)


@pytest.fixture(scope="session")
def registry():
    return multimedia_registry()


@pytest.fixture(scope="session")
def mc_result(model):
    return simulate(
        model,
        method="intervals",
        n_simulations=10_000,
        seed=2012,
        sample_utilities="missing",
    )


def report(title: str, lines) -> None:
    """Print a paper-vs-measured block (visible with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    for line in lines:
        print(line)
