"""Fig. 1 — the objective hierarchy (4 objectives, 14 criteria).

Regenerates the hierarchy, checks its structure against the paper and
benchmarks hierarchy construction + validation.
"""

from conftest import report

from repro.neon.criteria import OBJECTIVES, build_hierarchy


def test_fig1_hierarchy(benchmark):
    hierarchy = benchmark(build_hierarchy)
    assert hierarchy.root.name == "Reuse Ontology"
    assert tuple(c.name for c in hierarchy.root.children) == OBJECTIVES
    assert len(hierarchy.leaves()) == 14
    assert [len(c.children) for c in hierarchy.root.children] == [2, 3, 4, 5]
    report(
        "Fig. 1 objective hierarchy",
        [
            "paper: 4 objectives (Reuse Cost, Understandability, "
            "Integration, Reliability) refined into 14 criteria",
            f"measured: {len(hierarchy.root.children)} objectives, "
            f"{len(hierarchy.leaves())} criteria",
            hierarchy.render(),
        ],
    )
