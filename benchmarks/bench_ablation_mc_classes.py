"""Ablation A — the three §V Monte Carlo simulation classes.

"Three general classes of simulation are possible in the GMAA system":
completely random weights, rank-order-preserving weights, and weights
inside the elicited intervals.  The ablation shows how the information
content of the weight model narrows the rank distributions: random
weights scramble the mid-field, rank-order narrows it, intervals pin it.
"""

import numpy as np
import pytest
from conftest import report

from repro.casestudy.names import RANKED_NAMES
from repro.core.montecarlo import simulate

N = 5_000


def _spread(result):
    """Mean rank spread (max - min) across candidates."""
    return float(
        np.mean([result.statistics_for(n).fluctuation for n in result.names])
    )


@pytest.mark.parametrize("method", ["random", "rank_order", "intervals"])
def test_mc_class(benchmark, model, method):
    result = benchmark.pedantic(
        simulate,
        args=(model,),
        kwargs=dict(
            method=method, n_simulations=N, seed=7, sample_utilities="missing"
        ),
        rounds=3,
        iterations=1,
    )
    top_two = set(result.names_by_mean_rank()[:2])
    assert top_two & {"Media Ontology", "Boemie VDO"}
    report(
        f"Ablation A: Monte Carlo class '{method}'",
        [
            f"mean rank spread: {_spread(result):.2f} positions",
            f"best by mean rank: {result.names_by_mean_rank()[0]}",
            f"ever-best set size: {len(result.ever_best())}",
        ],
    )


def test_information_narrows_distributions(benchmark, model):
    """More weight information -> tighter rank distributions."""

    def run_all():
        return {
            method: _spread(
                simulate(
                    model, method=method, n_simulations=N, seed=11,
                    sample_utilities="missing",
                )
            )
            for method in ("random", "rank_order", "intervals")
        }

    spreads = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert spreads["intervals"] < spreads["rank_order"] < spreads["random"]
    report(
        "Ablation A summary (mean rank spread by simulation class)",
        [f"{method:>12}: {value:.2f}" for method, value in spreads.items()]
        + ["shape: elicited intervals < rank order < fully random"],
    )


def test_interval_class_preserves_average_ranking(benchmark, model):
    result = benchmark.pedantic(
        simulate,
        args=(model,),
        kwargs=dict(
            method="intervals", n_simulations=N, seed=13,
            sample_utilities="missing",
        ),
        rounds=1,
        iterations=1,
    )
    from repro.core.ranking import kendall_tau

    tau = kendall_tau(list(result.names_by_mean_rank()), list(RANKED_NAMES))
    assert tau > 0.9
