"""§IV comparison — GMAA ranking vs the thesis-[15] worst-case ranking.

"The ranking output by the GMAA system is very similar to the ranking
in [15], where missing performances were not correctly modeled (worst
attribute performances were assigned)."  The benchmark measures the
baseline evaluation; the assertion quantifies "very similar" with
Kendall's tau.
"""

from conftest import report

from repro.baselines.worst_case import worst_case_ranking
from repro.core.model import evaluate
from repro.core.ranking import kendall_tau, top_k_overlap


def test_worst_case_baseline(benchmark, problem):
    baseline = benchmark(worst_case_ranking, problem)
    ours = evaluate(problem)
    tau = kendall_tau(ours.names_by_rank, baseline.names_by_rank)
    overlap = top_k_overlap(ours.names_by_rank, baseline.names_by_rank, 5)
    assert tau > 0.85
    assert overlap >= 4
    moved = [
        name
        for name in ours.names_by_rank
        if ours.rank_of(name) != baseline.rank_of(name)
    ]
    report(
        "§IV GMAA vs worst-case-[15] ranking",
        [
            "paper: rankings 'very similar' despite mishandled missing values",
            f"measured: Kendall tau = {tau:.3f}; top-5 overlap {overlap}/5",
            f"candidates changing rank: {len(moved)} "
            f"({', '.join(moved) if moved else 'none'})",
        ],
    )
