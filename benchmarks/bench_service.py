"""Registry query service — warm cached rankings at wire speed.

The service (:mod:`repro.service`) serves registry rankings over HTTP
with two cache layers: the in-process response LRU and the sqlite
registry index underneath it.  A *cold* request is a read-through miss
— parse + compile + evaluate + single-writer commit; a *warm* request
is an LRU hit serving pre-rendered bytes.  This benchmark boots the
real threaded server on an ephemeral port, drives it with a
multi-threaded keep-alive client, and asserts

* warm cached-ranking throughput >= 500 req/s across 6 client threads,
* the best warm single-client request >= 20x faster than the mean
  cold (read-through) request over the same connection, and
* every warm response is byte-identical to the cold response that
  first produced it.

A second, *federated* scenario mounts a ``beta`` registry next to the
default one and repeats the warm read storm against the default
registry while a writer thread concurrently edits ``beta`` workspaces
and re-reads them (invalidation + read-through evaluation on the
other registry).  It asserts the per-registry isolation contract:

* reader throughput stays >= 500 req/s despite the concurrent writer,
* reader p99 latency stays under a declared ceiling, and
* every reader response stays byte-identical to the warm reference —
  writes to one registry never disturb another registry's hot path.

It emits a ``BENCH_service.json`` trajectory artifact (uploaded by
CI) combining both scenarios.  Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_service.py

or under pytest (``pytest benchmarks/bench_service.py -s``).
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.genreg import neon_shortlist_registry as build_registry

from repro.service.server import ServiceServer

N_WORKSPACES = 32
THREADS = 6
REQUESTS_PER_THREAD = 200
MIN_THROUGHPUT_RPS = 500.0
MIN_WARM_OVER_COLD = 20.0
FEDERATED_THREADS = 4
FEDERATED_REQUESTS_PER_THREAD = 150
MIN_FEDERATED_THROUGHPUT_RPS = 500.0
MAX_FEDERATED_P99_MS = 150.0
ARTIFACT = "BENCH_service.json"


def _get(connection: http.client.HTTPConnection, target: str):
    """(status, body) for one keep-alive GET."""
    connection.request("GET", target)
    response = connection.getresponse()
    return response.status, response.read()


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def run(
    n_workspaces: int = N_WORKSPACES,
    threads: int = THREADS,
    requests_per_thread: int = REQUESTS_PER_THREAD,
    verbose: bool = True,
) -> dict:
    with tempfile.TemporaryDirectory(prefix="registry-service-") as tmp:
        tmp = Path(tmp)
        paths = build_registry(tmp, n_workspaces)
        ids = [p.stem for p in paths]
        with ServiceServer(
            tmp, port=0, workers=8, access_log=None
        ) as server:
            host, port = server.address

            # --- cold pass: every request is a read-through miss ------
            reference = {}
            cold_latencies = []
            connection = http.client.HTTPConnection(host, port, timeout=30)
            for ws_id in ids:
                t0 = time.perf_counter()
                status, body = _get(
                    connection, f"/v1/workspaces/{ws_id}/ranking"
                )
                cold_latencies.append(time.perf_counter() - t0)
                assert status == 200, f"cold {ws_id}: HTTP {status}"
                reference[ws_id] = body

            # --- single-client warm latency (same conditions as cold) -
            single_warm = []
            for _ in range(3):
                for ws_id in ids:
                    t0 = time.perf_counter()
                    status, body = _get(
                        connection, f"/v1/workspaces/{ws_id}/ranking"
                    )
                    single_warm.append(time.perf_counter() - t0)
                    assert status == 200 and body == reference[ws_id]
            connection.close()

            # --- warm pass: multi-threaded keep-alive clients ---------
            warm_latencies = [[] for _ in range(threads)]
            mismatches = []
            barrier = threading.Barrier(threads + 1)

            def client(worker: int) -> None:
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    _get(conn, "/healthz")  # connect before the clock
                    barrier.wait()
                    for i in range(requests_per_thread):
                        ws_id = ids[(worker + i) % len(ids)]
                        t0 = time.perf_counter()
                        status, body = _get(
                            conn, f"/v1/workspaces/{ws_id}/ranking"
                        )
                        warm_latencies[worker].append(
                            time.perf_counter() - t0
                        )
                        if status != 200 or body != reference[ws_id]:
                            mismatches.append((worker, i, ws_id, status))
                finally:
                    conn.close()

            workers = [
                threading.Thread(target=client, args=(w,))
                for w in range(threads)
            ]
            for worker in workers:
                worker.start()
            barrier.wait()
            t0 = time.perf_counter()
            for worker in workers:
                worker.join()
            t_warm_wall = time.perf_counter() - t0

            # --- the server's own accounting ---------------------------
            conn = http.client.HTTPConnection(host, port, timeout=30)
            metrics = json.loads(_get(conn, "/metrics")[1])
            conn.close()

    n_requests = threads * requests_per_thread
    throughput = n_requests / t_warm_wall
    flat_warm = [s for series in warm_latencies for s in series]
    cold_mean = sum(cold_latencies) / len(cold_latencies)
    warm_single_p50 = _percentile(single_warm, 0.50)
    warm_single_best = min(single_warm)
    warm_p50 = _percentile(flat_warm, 0.50)
    warm_p99 = _percentile(flat_warm, 0.99)
    # apples to apples: one client, cold read-through vs warm LRU hit.
    # The best warm sample stands in for the true warm-path cost (same
    # convention as bench_registry_index's min-over-repeats): scheduler
    # noise inflates individual samples but never deflates one.
    speedup = cold_mean / warm_single_best

    result = {
        "n_workspaces": n_workspaces,
        "threads": threads,
        "requests_per_thread": requests_per_thread,
        "n_warm_requests": n_requests,
        "t_warm_wall": t_warm_wall,
        "throughput_rps": throughput,
        "cold_mean_ms": cold_mean * 1e3,
        "warm_single_client_p50_ms": warm_single_p50 * 1e3,
        "warm_single_client_best_ms": warm_single_best * 1e3,
        "warm_p50_ms": warm_p50 * 1e3,
        "warm_p99_ms": warm_p99 * 1e3,
        "speedup_warm_over_cold": speedup,
        "byte_identical_warm_responses": not mismatches,
        "server_cache_hit_ratio": metrics["cache"]["hit_ratio"],
        "min_throughput_floor_rps": MIN_THROUGHPUT_RPS,
        "min_warm_over_cold_floor": MIN_WARM_OVER_COLD,
    }
    if verbose:
        print(f"workspaces                 : {n_workspaces}")
        print(f"warm requests              : {n_requests} "
              f"({threads} threads)")
        print(f"warm throughput            : {throughput:10.0f} req/s")
        print(f"cold mean (read-through)   : {cold_mean * 1e3:10.2f} ms")
        print(f"warm p50/best (1 client)   : "
              f"{warm_single_p50 * 1e3:10.2f} / "
              f"{warm_single_best * 1e3:.2f} ms")
        print(f"warm p50 / p99 (contended) : {warm_p50 * 1e3:10.2f} / "
              f"{warm_p99 * 1e3:.2f} ms")
        print(f"warm-over-cold speedup     : {speedup:10.1f}x")
        print(f"byte-identical responses   : {not mismatches}")

    assert not mismatches, (
        f"{len(mismatches)} warm response(s) differed from the cold "
        f"reference, first: {mismatches[0]}"
    )
    assert throughput >= MIN_THROUGHPUT_RPS, (
        f"expected >= {MIN_THROUGHPUT_RPS:.0f} req/s warm, measured "
        f"{throughput:.0f} req/s"
    )
    assert speedup >= MIN_WARM_OVER_COLD, (
        f"expected the warm path >= {MIN_WARM_OVER_COLD:.0f}x faster than "
        f"the mean cold request, measured {speedup:.1f}x"
    )
    return result


def run_federated(
    n_workspaces: int = N_WORKSPACES,
    threads: int = FEDERATED_THREADS,
    requests_per_thread: int = FEDERATED_REQUESTS_PER_THREAD,
    verbose: bool = True,
) -> dict:
    """Warm reads on one registry while a writer churns another.

    Boots the server with a second ``beta`` registry mounted next to
    the default one, warms the default registry's rankings, then
    hammers them from ``threads`` keep-alive readers while a writer
    thread concurrently rewrites ``beta`` workspaces on disk and
    re-reads them — each edit forces invalidation plus a read-through
    on ``beta``'s own index.  Per-registry caches and locks mean none
    of that churn may slow or perturb the default registry's hot path.
    """
    with tempfile.TemporaryDirectory(prefix="registry-federated-") as tmp:
        tmp = Path(tmp)
        alpha, beta = tmp / "alpha", tmp / "beta"
        alpha.mkdir()
        beta.mkdir()
        ids = [p.stem for p in build_registry(alpha, n_workspaces)]
        beta_paths = build_registry(beta, max(4, n_workspaces // 4))
        # the writer alternates every beta workspace between its own
        # original bytes and a partner's — a real semantic change each
        # round, so the probe sees a new content hash every time.
        originals = {p: p.read_bytes() for p in beta_paths}
        partners = {
            p: originals[beta_paths[(i + 1) % len(beta_paths)]]
            for i, p in enumerate(beta_paths)
        }
        with ServiceServer(
            alpha, port=0, workers=8, access_log=None,
            mounts={"beta": beta},
        ) as server:
            host, port = server.address

            # --- warm the default registry, capture reference bytes --
            reference = {}
            connection = http.client.HTTPConnection(host, port, timeout=30)
            for ws_id in ids:
                status, body = _get(
                    connection,
                    f"/v1/registries/default/workspaces/{ws_id}/ranking",
                )
                assert status == 200, f"warmup {ws_id}: HTTP {status}"
                reference[ws_id] = body
            # prime beta once so the writer loop measures churn, not
            # first-touch compilation
            for path in beta_paths:
                status, _ = _get(
                    connection,
                    "/v1/registries/beta/workspaces/"
                    f"{path.stem}/ranking",
                )
                assert status == 200, f"beta prime {path.stem}: {status}"
            connection.close()

            stop = threading.Event()
            writer_edits = [0]
            writer_errors = []

            def churn_writer() -> None:
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    round_no = 0
                    while not stop.is_set():
                        for path in beta_paths:
                            fresh = (
                                partners[path]
                                if round_no % 2 == 0
                                else originals[path]
                            )
                            path.write_bytes(fresh)
                            status, _ = _get(
                                conn,
                                "/v1/registries/beta/workspaces/"
                                f"{path.stem}/ranking",
                            )
                            if status != 200:
                                writer_errors.append((path.stem, status))
                            writer_edits[0] += 1
                            if stop.is_set():
                                break
                        round_no += 1
                finally:
                    conn.close()

            reader_latencies = [[] for _ in range(threads)]
            mismatches = []
            barrier = threading.Barrier(threads + 1)

            def reader(worker: int) -> None:
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    _get(conn, "/healthz")  # connect before the clock
                    barrier.wait()
                    for i in range(requests_per_thread):
                        ws_id = ids[(worker + i) % len(ids)]
                        t0 = time.perf_counter()
                        status, body = _get(
                            conn,
                            "/v1/registries/default/workspaces/"
                            f"{ws_id}/ranking",
                        )
                        reader_latencies[worker].append(
                            time.perf_counter() - t0
                        )
                        if status != 200 or body != reference[ws_id]:
                            mismatches.append((worker, i, ws_id, status))
                finally:
                    conn.close()

            writer_thread = threading.Thread(target=churn_writer)
            readers = [
                threading.Thread(target=reader, args=(w,))
                for w in range(threads)
            ]
            writer_thread.start()
            for thread in readers:
                thread.start()
            barrier.wait()
            t0 = time.perf_counter()
            for thread in readers:
                thread.join()
            t_wall = time.perf_counter() - t0
            stop.set()
            writer_thread.join()

    n_requests = threads * requests_per_thread
    throughput = n_requests / t_wall
    flat = [s for series in reader_latencies for s in series]
    p50, p99 = _percentile(flat, 0.50), _percentile(flat, 0.99)
    stable = not mismatches

    result = {
        "federated_threads": threads,
        "federated_requests_per_thread": requests_per_thread,
        "federated_writer_edits": writer_edits[0],
        "federated_throughput_rps": throughput,
        "federated_p50_ms": p50 * 1e3,
        "federated_p99_ms": p99 * 1e3,
        "federated_reader_bytes_stable": stable,
        "min_federated_throughput_floor_rps": MIN_FEDERATED_THROUGHPUT_RPS,
        "max_federated_p99_floor_ms": MAX_FEDERATED_P99_MS,
    }
    if verbose:
        print(f"federated reader requests  : {n_requests} "
              f"({threads} threads)")
        print(f"federated writer edits     : {writer_edits[0]}")
        print(f"federated throughput       : {throughput:10.0f} req/s")
        print(f"federated p50 / p99        : {p50 * 1e3:10.2f} / "
              f"{p99 * 1e3:.2f} ms")
        print(f"federated bytes stable     : {stable}")

    assert not writer_errors, (
        f"{len(writer_errors)} writer re-read(s) failed on the beta "
        f"registry, first: {writer_errors[0]}"
    )
    assert stable, (
        f"{len(mismatches)} reader response(s) changed while the other "
        f"registry was being written, first: {mismatches[0]}"
    )
    assert throughput >= MIN_FEDERATED_THROUGHPUT_RPS, (
        f"expected >= {MIN_FEDERATED_THROUGHPUT_RPS:.0f} req/s from warm "
        f"readers under a concurrent writer, measured {throughput:.0f}"
    )
    assert p99 * 1e3 <= MAX_FEDERATED_P99_MS, (
        f"expected reader p99 <= {MAX_FEDERATED_P99_MS:.0f} ms under a "
        f"concurrent writer, measured {p99 * 1e3:.2f} ms"
    )
    return result


def test_service_throughput_and_cache_floor():
    result = run(verbose=True)
    result.update(run_federated(verbose=True))
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--threads", type=int, default=THREADS)
    parser.add_argument(
        "--requests", type=int, default=REQUESTS_PER_THREAD,
        help="warm requests per client thread",
    )
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces, args.threads, args.requests)
    outcome.update(run_federated(args.workspaces))
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
