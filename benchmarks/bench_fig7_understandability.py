"""Fig. 7 — ranking restricted to the Understandability objective.

GMAA re-roots the hierarchy at the chosen objective; only the three
Understandability attributes are evaluated.  The benchmark measures
subtree extraction + evaluation.  The printed Fig. 7 values are
internally inconsistent with Fig. 2 (see EXPERIMENTS.md), so the
assertions target the defensible shape: a leading tie that includes
Boemie VDO and COMM, with M3O mid-field.
"""

from conftest import report

from repro.core.model import evaluate


def _evaluate_subtree(problem):
    return evaluate(problem, "Understandability")


def test_fig7_understandability(benchmark, problem):
    evaluation = benchmark(_evaluate_subtree, problem)
    best = evaluation.rows[0].average
    top = {r.name for r in evaluation if r.average >= best - 1e-9}
    assert {"Boemie VDO", "COMM"} <= top
    assert 5 <= evaluation.rank_of("M3O") <= 15

    lines = [f"{'rank':>4} {'candidate':22} {'min':>7} {'avg':>7} {'max':>7}"]
    for row in evaluation.rows[:12]:
        lines.append(
            f"{row.rank:>4} {row.name:22} {row.minimum:7.3f} "
            f"{row.average:7.3f} {row.maximum:7.3f}"
        )
    lines.append(
        "paper: top tie at 0.852 (Boemie/SAPO/mpeg7-X/Hunter), COMM 0.845 "
        "— inconsistent with Fig. 2's (3,3,3) profile for COMM; our "
        "reproduction follows Fig. 2 (see EXPERIMENTS.md)"
    )
    report("Fig. 7 ranking for Understandability", lines)
