"""Figs. 3-4 — component utilities (linear ValueT, banded discrete).

Fig. 3: the number of functional requirements covered gets a precise
linear utility on [0, 3].  Fig. 4: Purpose reliability's levels map to
[0, .2], [.2, .4], [.4, .6] and exactly 1.0.  The benchmark sweeps the
utility evaluation across the whole performance table (the hot path of
every model build).
"""

import pytest
from conftest import report

from repro.core.scales import MISSING


def _evaluate_all(problem):
    total = 0.0
    for alt in problem.table.alternatives:
        for attr in problem.attribute_names:
            fn = problem.utility_function(attr)
            total += fn.utility(alt.performance(attr)).midpoint
    return total


def test_fig3_fig4_component_utilities(benchmark, problem):
    total = benchmark(_evaluate_all, problem)
    assert total > 0

    value_t = problem.utility_function("functional_requirements")
    assert value_t.utility(0.0).is_point and value_t.utility(0.0).lower == 0.0
    assert value_t.utility(3.0).lower == 1.0
    assert value_t.utility(0.93).midpoint == pytest.approx(0.31)

    purpose = problem.utility_function("purpose_reliability")
    levels = [purpose.utility(code) for code in range(4)]
    assert levels[0].lower == pytest.approx(0.0)
    assert levels[1].almost_equal(levels[1].__class__(0.2, 0.4), tol=1e-9)
    assert levels[2].lower == pytest.approx(0.4)
    assert levels[2].upper == pytest.approx(0.6)
    assert levels[3].is_point and levels[3].lower == 1.0
    assert purpose.utility(MISSING).lower == 0.0
    assert purpose.utility(MISSING).upper == 1.0

    report(
        "Figs. 3-4 component utilities",
        [
            "paper Fig. 3: linear utility, u(0)=0, u(3)=1 on ValueT",
            f"measured: u(0.93) = {value_t.utility(0.93).midpoint:.2f} (0.31 expected)",
            "paper Fig. 4: purpose levels [0,.2], [.2,.4], [.4,.6], 1.0",
            "measured: "
            + ", ".join(f"[{iv.lower:.1f},{iv.upper:.1f}]" for iv in levels),
            "missing performance utility: [0, 1] (ref. [18])",
        ],
    )
