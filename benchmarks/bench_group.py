"""Group-decision speedup — a registry's member rosters in one array program.

The paper's case for imprecise inputs is that they make the system
"suitable for group decision support": every decision maker answers
with intervals, and the group inputs combine them (intersection for
consensus, hull for tolerant aggregation).  Before the members axis,
``core/group.py`` evaluated each decision maker through the scalar
``model.evaluate`` path — at registry scale, that is
``n_workspaces × n_members`` object-graph compilations.

This benchmark builds a 200-workspace synthetic registry with a
20-member roster and compares

* the **scalar loop** — per workspace, per member:
  ``evaluate(problem.with_weights(member.weights))``, plus the scalar
  aggregation/Borda/disagreement calls (exactly what
  ``GroupDecision`` did before the tensor path), against
* the **members tensor axis** — ``ShardedRunner`` with a group
  roster: one compile per workspace, rosters stacked into
  ``(P, M, n_att)`` tensors, every member ranking / aggregation /
  Borda count / disagreement profile from stacked array programs.

It asserts the tensor path is >= 8x faster and produces *identical*
group results, then emits a ``BENCH_group.json`` trajectory artifact
(uploaded and floor-checked by CI's bench-trajectory job).

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_group.py

or under pytest (``pytest benchmarks/bench_group.py -s``).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.genreg import neon_shortlist_registry as build_registry

from repro.core import workspace
from repro.core.engine import GroupResult
from repro.core.group import (
    aggregate_weights,
    borda_ranking,
    disagreement,
    members_from_spec,
    parse_members_document,
)
from repro.core.model import evaluate
from repro.core.runtime import BatchOptions, ShardedRunner

N_WORKSPACES = 200
N_MEMBERS = 20
MIN_SPEEDUP = 8.0
ARTIFACT = "BENCH_group.json"


def build_members_document(hierarchy, n_members: int = N_MEMBERS) -> dict:
    """A deterministic ``repro-members/1`` roster over ``hierarchy``.

    Every member emphasises a rotating subset of objectives (raw
    ratio-scale intervals with ±20 % imprecision), so the roster
    carries genuine disagreement without being disjoint.
    """
    nodes = [
        n.name for n in hierarchy.nodes() if n.name != hierarchy.root.name
    ]
    members = []
    for k in range(n_members):
        local = {}
        for i, name in enumerate(nodes):
            factor = 1.0 + 0.15 * ((k + i) % 5)
            local[name] = [0.8 * factor, 1.2 * factor]
        members.append({"name": f"dm-{k:02d}", "local": local})
    return {"format": "repro-members/1", "members": members}


def scalar_reference(paths, spec):
    """The pre-members-axis loop: one scalar evaluation per member.

    Per workspace: JSON parse, then per decision maker a full
    ``problem.with_weights(...)`` object-graph compile + evaluation,
    then the scalar aggregation (intersection + hull evaluations),
    Borda count and disagreement profile — the exact work the old
    ``GroupDecision`` methods performed.
    """
    results = []
    for path in paths:
        problem = workspace.load(path)
        members = members_from_spec(spec, problem.hierarchy)
        rankings = tuple(
            evaluate(problem.with_weights(m.weights)).names_by_rank
            for m in members
        )
        tolerant = evaluate(
            problem.with_weights(aggregate_weights(members, "hull"))
        ).names_by_rank
        try:
            consensus = evaluate(
                problem.with_weights(
                    aggregate_weights(members, "intersection")
                )
            ).names_by_rank
        except ValueError:
            consensus = None
        scores = disagreement(members)
        results.append(
            GroupResult(
                member_names=tuple(m.name for m in members),
                member_rankings=rankings,
                borda=borda_ranking(rankings),
                tolerant=tolerant,
                consensus=consensus,
                disjoint=(),
                disagreement=tuple(scores.items()),
            )
        )
    return results


def tensor_path(paths, spec):
    """The members tensor axis: one sharded group run (single worker)."""
    report = ShardedRunner(workers=1, options=BatchOptions(group=spec)).run(
        [str(p) for p in paths]
    )
    assert not report.skipped, report.skipped[:1]
    return [
        GroupResult.from_payload(json.loads(r.group_json))
        for r in report.results
    ]


def run_benchmark(n_workspaces: int = N_WORKSPACES) -> dict:
    """Time both paths, assert identity and the >= 8x floor."""
    from repro.neon.criteria import build_hierarchy

    with tempfile.TemporaryDirectory() as tmp:
        registry = Path(tmp)
        t0 = time.perf_counter()
        paths = build_registry(registry, n_workspaces)
        t_build = time.perf_counter() - t0

        spec = parse_members_document(
            build_members_document(build_hierarchy())
        )

        t0 = time.perf_counter()
        scalar = scalar_reference(paths, spec)
        t_scalar = time.perf_counter() - t0

        # Warm the OS cache symmetrically (scalar already parsed all
        # files once), then time the tensor path.
        t0 = time.perf_counter()
        tensor = tensor_path(paths, spec)
        t_tensor = time.perf_counter() - t0

        identical = all(
            s.member_rankings == t.member_rankings
            and s.borda == t.borda
            and s.tolerant == t.tolerant
            and s.consensus == t.consensus
            and s.disagreement == t.disagreement
            for s, t in zip(scalar, tensor)
        ) and len(scalar) == len(tensor)

    speedup = t_scalar / t_tensor if t_tensor > 0 else float("inf")
    return {
        "n_workspaces": n_workspaces,
        "n_members": N_MEMBERS,
        "t_build_registry": t_build,
        "t_scalar_loop": t_scalar,
        "t_tensor_axis": t_tensor,
        "speedup": speedup,
        "identical_to_scalar_loop": identical,
        "min_speedup_floor": MIN_SPEEDUP,
    }


def main() -> int:
    """CI entry point: run, report, write the artifact, gate the floor."""
    stats = run_benchmark()
    print(json.dumps(stats, indent=2))
    Path(ARTIFACT).write_text(json.dumps(stats, indent=2))
    if not stats["identical_to_scalar_loop"]:
        print("FAIL group tensor axis diverges from the scalar loop")
        return 1
    if stats["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL speedup {stats['speedup']:.2f}x is below the "
            f"{MIN_SPEEDUP:.0f}x floor"
        )
        return 1
    print(
        f"OK   {stats['speedup']:.1f}x over the per-member scalar loop "
        f"({stats['n_workspaces']} workspaces x {stats['n_members']} members)"
    )
    return 0


def test_group_tensor_axis_speedup():
    """Pytest wrapper: identity + the >= 8x floor on a smaller registry."""
    stats = run_benchmark(n_workspaces=60)
    assert stats["identical_to_scalar_loop"]
    assert stats["speedup"] >= MIN_SPEEDUP, stats


if __name__ == "__main__":
    sys.exit(main())
