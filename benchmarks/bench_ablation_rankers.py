"""Ablation C — MAUT vs graph-metric and classic MCDM rankers.

Novelty context: ontology-selection tooling before the paper ranked by
query/graph metrics (AKTiveRank family).  The ablation quantifies how
far such rankings sit from the multi-criteria one — graph metrics are
blind to cost and reliability criteria — and confirms that precise
classic MCDM methods (weighted sum, TOPSIS) agree with the GMAA
average ranking while the graph ranker does not.
"""

from conftest import report

from repro.baselines.aktiverank import rank as aktiverank
from repro.baselines.mcdm import topsis, utilities_from_problem, weighted_sum
from repro.casestudy.names import RANKED_NAMES
from repro.core.ranking import kendall_tau, top_k_overlap

QUERY = "video audio media duration segment annotation"


def test_aktiverank_vs_maut(benchmark, registry, problem):
    ontologies = {entry.name: entry.ontology for entry in registry}
    result = benchmark.pedantic(
        aktiverank, args=(ontologies, QUERY), rounds=3, iterations=1
    )
    ak_order = [name for name, _ in result]
    tau = kendall_tau(ak_order, list(RANKED_NAMES))
    overlap = top_k_overlap(ak_order, list(RANKED_NAMES), 5)
    assert tau < 0.5  # the graph ranker genuinely disagrees
    report(
        "Ablation C: AKTiveRank-style vs MAUT",
        [
            f"query: {QUERY!r}",
            f"AKTiveRank top-5: {', '.join(ak_order[:5])}",
            f"MAUT top-5:       {', '.join(RANKED_NAMES[:5])}",
            f"Kendall tau = {tau:.3f}; top-5 overlap {overlap}/5",
            "graph metrics cannot see cost/reliability criteria — the "
            "paper's motivation for a multi-criteria method",
        ],
    )


def test_precise_mcdm_agrees_with_maut(benchmark, problem):
    names, matrix, weights = utilities_from_problem(problem)
    wsm_order = [n for n, _ in benchmark(weighted_sum, names, matrix, weights)]
    topsis_order = [n for n, _ in topsis(names, matrix, weights)]
    tau_wsm = kendall_tau(wsm_order, list(RANKED_NAMES))
    tau_topsis = kendall_tau(topsis_order, list(RANKED_NAMES))
    assert tau_wsm == 1.0  # the precise special case of the same model
    assert tau_topsis > 0.8
    report(
        "Ablation C: precise MCDM vs MAUT",
        [
            f"weighted sum tau = {tau_wsm:.3f} (identical by construction)",
            f"TOPSIS tau       = {tau_topsis:.3f}",
        ],
    )
