"""Fig. 8 — weight-stability intervals for every objective.

GMAA reports [0, 1] for every node except the number of functional
requirements and the adequacy of naming conventions.  The benchmark
measures the full 18-node stability sweep (exact affine analysis, no
search).
"""

from conftest import report

from repro.casestudy.paper_results import FIG8_PAPER
from repro.core.stability import stability_report


def test_fig8_stability_intervals(benchmark, problem):
    result = benchmark(stability_report, problem, "best")
    sensitive = set(result.sensitive_objectives())
    assert sensitive == {
        "N. Functional Requirements",
        "Adequacy naming conventions",
    }
    assert len(result.insensitive_objectives()) == 16

    lines = [f"{'objective':30} {'measured interval':>20} {'paper':>16}"]
    for name, interval in result.intervals.items():
        measured = f"[{interval.lower:.3f}, {interval.upper:.3f}]"
        paper = FIG8_PAPER.get(name)
        paper_text = f"[{paper[0]:.3f}, {paper[1]:.3f}]" if paper else "[0, 1]"
        lines.append(f"{name:30} {measured:>20} {paper_text:>16}")
    lines.append(
        "shape: exactly the paper's two criteria have bounded intervals "
        "(the bounded side differs; the scanned bounds are unreliable)"
    )
    report("Fig. 8 weight stability intervals", lines)
