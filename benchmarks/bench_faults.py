"""Fault tolerance — recovery is byte-exact and the clean path is free.

PR 7's fault-tolerant runtime (:mod:`repro.core.faults` + the
round-based retry/quarantine fan-out in :mod:`repro.core.runtime`)
must hold two properties at once:

* **Recovery changes nothing.**  A registry batch run under the
  ``worker-kill`` fault plan — every chunk dispatch has a 10 % chance
  of hard-killing its worker process (``os._exit``), producing real
  ``BrokenProcessPool`` breaks in the parent — must complete and
  produce results *identical* to a clean run: same rows, same floats,
  same rendered bytes.  Completed chunks are merged, broken ones are
  re-dispatched to a fresh pool.
* **The clean path stays fast.**  The fault hooks (a module-global
  ``is None`` check per site) must not tax the no-fault path: the
  sharded runtime must keep its PR 2 speedup over the sequential
  reference within 3 % (floor 4.365 = 0.97 x the 4.5 committed floor
  of ``bench_sharded_batch.py``).

The benchmark builds the same ~200-workspace synthetic registry as
``bench_sharded_batch.py``, times the sequential reference against the
warm sharded runtime (no plan installed), then runs the worker-kill
plan and compares fingerprints and merged results against the clean
run.  It emits a ``BENCH_faults.json`` trajectory artifact (uploaded
by CI).  Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_faults.py

or under pytest (``pytest benchmarks/bench_faults.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_sharded_batch import (
    _best_sharded_time,
    report_fingerprints,
    sequential_reference,
)

from repro.core.genreg import neon_shortlist_registry as build_registry

from repro.core.faults import named_plan
from repro.core.runtime import BatchOptions, RetryPolicy, ShardedRunner

N_WORKSPACES = 200
#: Trajectory target, committed in ``benchmarks/floors.json``: 0.97 x
#: the 4.5 committed floor of ``BENCH_sharded_batch.json`` — the fault
#: hooks may not cost the clean path more than 3 %.
TARGET_NO_FAULT_SPEEDUP = 4.365
#: In-script assertion floor, deliberately looser than the committed
#: target (the same pattern as bench_sharded_batch's 4.0 script floor
#: vs its 4.5 committed floor) so a loaded single-core box does not
#: flake on scheduler noise.
MIN_NO_FAULT_SPEEDUP = 3.8
ARTIFACT = "BENCH_faults.json"
KILL_WORKERS = 4


def run(n_workspaces: int = N_WORKSPACES, verbose: bool = True) -> dict:
    """The gate: no-fault speedup floor + byte-exact worker-kill recovery."""
    workers = max(2, min(os.cpu_count() or 2, 4))
    worker_counts = sorted({1, workers})
    options = BatchOptions()
    with tempfile.TemporaryDirectory(prefix="faults-registry-") as tmp:
        tmp = Path(tmp)
        paths = build_registry(tmp, n_workspaces)

        # --- clean path, same contenders as bench_sharded_batch ------
        # (sequential re-parse reference vs the best warm sharded run).
        # Noise only ever slows a run, so each side takes its best of a
        # few passes, and a measurement session that still lands under
        # the floor is retried — a load spike inflates both timings
        # independently, never the true ratio the floor gates.
        reference = sequential_reference(paths)
        runner = ShardedRunner(workers=workers, options=options)
        clean = runner.run(paths)  # cold run: compiles + persists .npz
        speedup = 0.0
        for _ in range(3):
            t_seq = None
            for _ in range(2):
                t0 = time.perf_counter()
                sequential_reference(paths)
                elapsed = time.perf_counter() - t0
                t_seq = elapsed if t_seq is None else min(t_seq, elapsed)
            t_sharded = min(
                _best_sharded_time(paths, worker_counts, options).values()
            )
            speedup = max(speedup, t_seq / t_sharded)
            if speedup >= TARGET_NO_FAULT_SPEEDUP:
                break
        clean_ok = report_fingerprints(clean) == reference

        # --- worker-kill plan: 10 % of dispatches kill their worker --
        plan = named_plan("worker-kill")
        kill_runner = ShardedRunner(
            workers=max(workers, KILL_WORKERS),
            options=replace(options, faults=plan),
            retry=RetryPolicy(chunk_timeout=60.0),
        )
        t0 = time.perf_counter()
        faulty = kill_runner.run(paths)
        t_faulty = time.perf_counter() - t0
        completed = (
            len(faulty.results) == n_workspaces
            and not faulty.skipped
            and faulty.n_quarantined == 0
        )
        identical = (
            report_fingerprints(faulty) == report_fingerprints(clean)
            and faulty.results == clean.results
        )

    result = {
        "n_workspaces": n_workspaces,
        "workers": workers,
        "t_sequential_best": t_seq,
        "t_sharded_no_fault_best": t_sharded,
        "speedup_no_fault": speedup,
        "t_worker_kill_run": t_faulty,
        "n_retried_under_kill": faulty.n_retried,
        "completed_under_worker_kill": bool(completed),
        "byte_identical_under_faults": bool(identical and clean_ok),
        "min_no_fault_floor": MIN_NO_FAULT_SPEEDUP,
    }
    if verbose:
        print(f"workspaces                    : {n_workspaces}")
        print(f"sequential reference          : {t_seq * 1e3:8.1f} ms")
        print(f"sharded, no faults            : {t_sharded * 1e3:8.1f} ms")
        print(f"speedup (no-fault path)       : {speedup:8.1f}x")
        print(f"worker-kill run               : {t_faulty * 1e3:8.1f} ms")
        print(f"chunks retried under kill     : {faulty.n_retried}")
        print(f"completed under worker-kill   : {completed}")
        print(f"byte-identical under faults   : {identical and clean_ok}")

    assert clean_ok, "clean sharded run diverged from the sequential reference"
    assert completed, (
        f"worker-kill run lost work: {len(faulty.results)} results, "
        f"{len(faulty.skipped)} skipped, {faulty.n_quarantined} quarantined"
    )
    assert identical, "worker-kill run results differ from the clean run"
    assert speedup >= MIN_NO_FAULT_SPEEDUP, (
        f"fault hooks slowed the clean path: expected >= "
        f"{MIN_NO_FAULT_SPEEDUP}x over sequential, measured {speedup:.1f}x"
    )
    return result


def test_fault_recovery_and_no_fault_overhead():
    """Pytest entry point: run the gate and write the CI artifact."""
    result = run(N_WORKSPACES, verbose=True)
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces)
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
