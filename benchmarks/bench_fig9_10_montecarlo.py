"""Figs. 9-10 — the 10,000-run Monte Carlo simulation within intervals.

Weights are drawn inside the elicited Fig. 5 intervals; utilities of
missing performances are drawn in [0, 1] (ref. [18]).  The benchmark
measures the full 10,000-simulation run including rank extraction.
Assertions cover §V's findings: only Media Ontology and Boemie VDO ever
rank first, the top five match the average-utility ranking and
fluctuate by at most two positions, and the discarded candidates sit
pinned at the bottom.
"""

from conftest import report

from repro.casestudy.names import CANDIDATE_NAMES, TOP_FIVE
from repro.casestudy.paper_results import FIG10_PAPER, N_SIMULATIONS
from repro.core.montecarlo import simulate


def _run(model):
    return simulate(
        model,
        method="intervals",
        n_simulations=N_SIMULATIONS,
        seed=2012,
        sample_utilities="missing",
    )


def test_fig9_10_monte_carlo(benchmark, model):
    result = benchmark(_run, model)
    assert set(result.ever_best()) == {"Media Ontology", "Boemie VDO"}
    assert result.top_k_by_mean(5) == TOP_FIVE
    assert result.max_fluctuation(TOP_FIVE) <= 2
    assert result.statistics_for("MPEG7 Ontology").mode == 23
    assert result.statistics_for("Photography Ontology").mode == 22

    paper_rows = {row.name: row for row in FIG10_PAPER}
    lines = [
        f"{'candidate':22} {'paper mode/range':>17} {'measured mode/range':>21} "
        f"{'paper std':>9} {'std':>6}"
    ]
    close_modes = 0
    for name in CANDIDATE_NAMES:
        ours = result.statistics_for(name)
        paper = paper_rows[name]
        if abs(ours.mode - paper.mode) <= 1:
            close_modes += 1
        lines.append(
            f"{name:22} {paper.mode:>6} {paper.minimum:>3}-{paper.maximum:<7}"
            f"{ours.mode:>8} {ours.minimum:>3}-{ours.maximum:<9}"
            f"{paper.std:9.3f} {ours.std:6.3f}"
        )
    lines.append(
        f"modes within one position of Fig. 10 for {close_modes}/23 candidates"
    )
    assert close_modes >= 20
    report("Figs. 9-10 Monte Carlo (10,000 runs, interval weights)", lines)
