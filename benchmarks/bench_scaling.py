"""Scaling — evaluation / screening / Monte Carlo cost vs problem size.

Synthetic problems with growing alternative and attribute counts,
exercising the three computational kernels: the additive evaluation
(matrix build), the LP screening (quadratic in alternatives) and the
vectorised Monte Carlo.
"""

import pytest
from conftest import report

from repro.core.dominance import screen
from repro.core.genreg import scaling_problem as synthetic_problem
from repro.core.model import AdditiveModel
from repro.core.montecarlo import simulate


@pytest.mark.parametrize("n_alternatives", [10, 40, 160])
def test_evaluation_scaling(benchmark, n_alternatives):
    problem = synthetic_problem(n_alternatives, 14)
    evaluation = benchmark(lambda: AdditiveModel(problem).evaluate())
    assert len(evaluation) == n_alternatives


@pytest.mark.parametrize("n_alternatives", [8, 16, 32])
def test_screening_scaling(benchmark, n_alternatives):
    problem = synthetic_problem(n_alternatives, 10)
    model = AdditiveModel(problem)
    result = benchmark.pedantic(screen, args=(model,), rounds=1, iterations=1)
    assert len(result.non_dominated) >= 1
    report(
        f"screening at n={n_alternatives}",
        [f"survivors: {len(result.potentially_optimal)} of {n_alternatives}"],
    )


@pytest.mark.parametrize("n_simulations", [1_000, 10_000, 100_000])
def test_monte_carlo_scaling(benchmark, model, n_simulations):
    result = benchmark.pedantic(
        simulate,
        args=(model,),
        kwargs=dict(method="intervals", n_simulations=n_simulations, seed=3),
        rounds=2,
        iterations=1,
    )
    assert result.n_simulations == n_simulations


@pytest.mark.parametrize("n_attributes", [7, 14, 28])
def test_attribute_scaling(benchmark, n_attributes):
    problem = synthetic_problem(40, n_attributes)
    evaluation = benchmark(lambda: AdditiveModel(problem).evaluate())
    assert len(evaluation) == 40
