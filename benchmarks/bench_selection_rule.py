"""NeOn decision rule — select best-ranked candidates until CQ coverage
exceeds 70 %.

"As the number of CQs covered by the five best-ranked MM ontologies was
higher than 70%, no more ontologies were necessary for reuse."  The
benchmark measures the full pipeline selection stage (search -> assess
-> evaluate -> select) over the synthetic corpus.
"""

from conftest import report

from repro.casestudy.cqs import m3_competency_questions
from repro.casestudy.names import TOP_FIVE
from repro.casestudy.paper_results import COVERAGE_THRESHOLD
from repro.casestudy.preferences import paper_weight_system
from repro.neon.pipeline import ReusePipeline


def _run(registry):
    pipeline = ReusePipeline(
        registry,
        m3_competency_questions(),
        weights=paper_weight_system(),
    )
    return pipeline.run(
        "multimedia ontology",
        coverage_threshold=COVERAGE_THRESHOLD,
        integrate_selection=False,
    )


def test_selection_rule(benchmark, registry):
    from repro.casestudy.cqs import covered_cq_ids

    outcome = benchmark.pedantic(_run, args=(registry,), rounds=3, iterations=1)
    selection = outcome.selection
    assert selection.selected == TOP_FIVE
    assert selection.reached_threshold
    assert selection.coverage_ratio > COVERAGE_THRESHOLD
    four_best_union = frozenset().union(
        *(covered_cq_ids(name) for name in TOP_FIVE[:4])
    )
    assert len(four_best_union) < 70
    report(
        "NeOn selection rule (>70 % CQ coverage)",
        [
            "paper: five best-ranked candidates cover > 70 % of the CQs; "
            "no more ontologies necessary",
            f"measured: selected {selection.n_selected} "
            f"({', '.join(selection.selected)}) covering "
            f"{selection.coverage_ratio:.0%} of {selection.total_cqs} CQs",
            f"four best-ranked alone cover {len(four_best_union)} of 100 "
            "(below threshold) — the fifth is required",
        ],
    )
