"""§V screening — non-dominance and potential optimality via LP.

"20 out of the 23 MM ontologies are non-dominated and potentially
optimal.  As a result, this SA can only discard three MM ontologies."
The benchmark measures the complete screening (up to 23 x 22 dominance
LPs plus 20 potential-optimality LPs through scipy/HiGHS).
"""

from conftest import report

from repro.casestudy.paper_results import DISCARDED_ADOPTED, DISCARDED_PAPER_TEXT
from repro.core.dominance import screen


def test_screening(benchmark, model):
    result = benchmark.pedantic(screen, args=(model,), rounds=3, iterations=1)
    assert len(result.non_dominated) == 20
    assert len(result.potentially_optimal) == 20
    assert set(result.discarded) == set(DISCARDED_ADOPTED)
    report(
        "§V dominance / potential-optimality screening",
        [
            "paper: 20 of 23 non-dominated and potentially optimal; "
            f"discarded (text): {', '.join(DISCARDED_PAPER_TEXT)}",
            "  (the text's 'DIG35' contradicts Fig. 10, where DIG35 is "
            "pinned at rank 5; we adopt MPEG7 Ontology — see DESIGN.md)",
            f"measured: {len(result.potentially_optimal)} of 23 survive; "
            f"discarded: {', '.join(result.discarded)}",
        ],
    )


def test_rank_intervals(benchmark, model, mc_result):
    """Attainable-rank intervals (partial-information companion to
    Fig. 10): every empirical Monte Carlo rank must fall inside."""
    from repro.core.dominance import dominance_matrix
    from repro.core.rankintervals import rank_intervals

    matrix = dominance_matrix(model)
    intervals = benchmark(rank_intervals, model, matrix)
    violations = 0
    for name in mc_result.names:
        stats = mc_result.statistics_for(name)
        if not (
            intervals[name].best <= stats.minimum
            and stats.maximum <= intervals[name].worst
        ):
            violations += 1
    assert violations == 0
    report(
        "Attainable-rank intervals vs Fig. 10 empirical ranges",
        [
            f"discarded candidates' best attainable ranks: "
            + ", ".join(
                f"{n}={intervals[n].best}"
                for n in DISCARDED_ADOPTED
            ),
            "all 23 empirical Monte Carlo rank ranges fall inside the "
            "LP-derived attainable-rank intervals",
        ],
    )
