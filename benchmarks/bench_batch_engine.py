"""Batch-engine speedup — the 10,000-run Monte Carlo as one array program.

The seed implementation of ``sample_utilities`` evaluation looped in
Python over simulations and alternatives; the batch engine
(:mod:`repro.core.engine`) lowers the problem once and evaluates the
whole run as tensors with a leading ``n_simulations`` axis.  This
benchmark replays the seed-style loop against the engine on the
paper's §V setting (interval weights, missing-cell utilities drawn in
[0, 1], seed 2012) and asserts

* the engine is at least 10x faster over 10,000 simulations, and
* the rank matrices — and therefore every Fig. 9/10 ranking statistic —
  are bit-identical for the fixed seed.

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py

or under pytest (``pytest benchmarks/bench_batch_engine.py -s``).
The full comparison takes well under a second, so the standalone run
always uses the paper's 10,000 simulations; below a few thousand
simulations fixed costs (weight sampling) dominate both paths and the
speedup ratio is meaningless.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.casestudy.problem import multimedia_problem
from repro.core.engine import (
    BatchEvaluator,
    compile_problem,
    sample_in_intervals,
)
from repro.core.montecarlo import MonteCarloResult

SEED = 2012


def _seed_loop_reference(compiled, weights, draws):
    """The pre-engine evaluation: Python loops over sims and alternatives.

    Mirrors the seed's ``sample_utilities`` math — class-average
    component utilities plus per-missing-cell corrections — one
    simulation, one alternative, one attribute at a time, with the same
    stable column-order tie-break for ranks.
    """
    n_sims = weights.shape[0]
    u_avg = compiled.u_avg
    n_alt, n_att = u_avg.shape
    cells = [(int(i), int(j)) for i, j in np.argwhere(compiled.missing)]
    utilities = np.empty((n_sims, n_alt))
    for s in range(n_sims):
        w = weights[s]
        for i in range(n_alt):
            utilities[s, i] = np.dot(u_avg[i], w)
        for k, (i, j) in enumerate(cells):
            utilities[s, i] += w[j] * (draws[s, k] - u_avg[i, j])
    ranks = np.empty((n_sims, n_alt), dtype=np.intp)
    for s in range(n_sims):
        order = sorted(range(n_alt), key=lambda i: (-utilities[s, i], i))
        for rank, i in enumerate(order, start=1):
            ranks[s, i] = rank
    return ranks


def _statistics_table(names, ranks):
    """The full Fig. 10 statistics table from a rank matrix."""
    result = MonteCarloResult(names, ranks, "intervals")
    return [
        (s.name, s.mode, s.minimum, s.maximum, s.mean, s.std, s.p25, s.p50, s.p75)
        for s in result.statistics()
    ]


def run(n_simulations: int = 10_000, verbose: bool = True) -> dict:
    compiled = compile_problem(multimedia_problem())
    evaluator = BatchEvaluator(compiled)

    # --- engine path: one call, sampling included -------------------
    t0 = time.perf_counter()
    engine_ranks, _ = evaluator.monte_carlo_ranks(
        method="intervals",
        n_simulations=n_simulations,
        seed=SEED,
        sample_utilities="missing",
    )
    t_engine = time.perf_counter() - t0

    # --- seed-style loop: identical RNG stream, Python evaluation ---
    t0 = time.perf_counter()
    rng = np.random.default_rng(SEED)
    weights, _ = sample_in_intervals(
        compiled.w_low, compiled.w_up, n_simulations, rng
    )
    n_cells = int(compiled.missing.sum())
    draws = rng.uniform(0.0, 1.0, size=(n_simulations, n_cells))
    loop_ranks = _seed_loop_reference(compiled, weights, draws)
    t_loop = time.perf_counter() - t0

    identical_ranks = bool(np.array_equal(engine_ranks, loop_ranks))
    names = compiled.alternative_names
    identical_stats = _statistics_table(names, engine_ranks) == _statistics_table(
        names, loop_ranks
    )
    speedup = t_loop / t_engine

    if verbose:
        print(f"simulations            : {n_simulations}")
        print(f"engine (vectorized)    : {t_engine * 1e3:8.1f} ms")
        print(f"seed-style Python loop : {t_loop * 1e3:8.1f} ms")
        print(f"speedup                : {speedup:8.1f}x")
        print(f"rank matrices identical: {identical_ranks}")
        print(f"Fig. 10 stats identical: {identical_stats}")

    assert identical_ranks, "engine ranks diverge from the loop reference"
    assert identical_stats, "ranking statistics diverge"
    assert speedup >= 10.0, f"expected >= 10x speedup, measured {speedup:.1f}x"
    return {
        "n_simulations": n_simulations,
        "t_engine": t_engine,
        "t_loop": t_loop,
        "speedup": speedup,
    }


def test_batch_engine_speedup_and_bit_identity():
    run(10_000, verbose=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulations", type=int, default=10_000)
    args = parser.parse_args()
    run(args.simulations)
