"""Sharded multi-problem runtime speedup — a registry in one array program.

PR 1 made a single decision problem fast; ``repro batch`` still walked
a registry one workspace at a time — JSON parse, object-graph compile,
per-problem evaluation, single process.  The sharded runtime
(:mod:`repro.core.runtime`) removes all three costs: compiled arrays
mmap-load from persisted ``.npz`` artifacts, same-shape problems stack
into ``(n_problems, n_alternatives, n_attributes)`` tensor programs,
and shards spread across a process pool with work-stealing chunks.

This benchmark builds a ~200-workspace synthetic registry — candidate
shortlists drawn from a pool of generated ontologies
(:mod:`repro.ontology.generator`) scored through the NeOn assess
activity — and asserts

* the sharded runtime beats the PR 1 sequential path by >= 4x, and
* the merged report is identical for 1 worker and N workers (and to a
  per-problem reference on a sample of workspaces).

It emits a ``BENCH_sharded_batch.json`` trajectory artifact (uploaded
by CI) recording every timed leg.

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_sharded_batch.py

or under pytest (``pytest benchmarks/bench_sharded_batch.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.engine import BatchEvaluator
from repro.core.genreg import neon_shortlist_registry
from repro.core.runtime import BatchOptions, ShardedRunner
from repro.core import workspace

SEED = 2012
N_WORKSPACES = 200
MIN_SPEEDUP = 4.0
ARTIFACT = "BENCH_sharded_batch.json"


def build_registry(directory: Path, n_workspaces: int = N_WORKSPACES):
    """The shared seed-2012 NeOn shortlist registry fixture.

    Delegates to :func:`repro.core.genreg.neon_shortlist_registry` —
    the single home of the fixture builder every runtime bench (and the
    CI service/chaos smokes) uses; contents are byte-identical to the
    historical per-bench copies, so committed floors stay valid.
    """
    return neon_shortlist_registry(directory, n_workspaces, seed=SEED)


def sequential_reference(paths, simulations: int = 0):
    """The PR 1 `repro batch` hot path: one workspace at a time.

    JSON parse -> object-graph compile (through the in-memory LRU, as
    the CLI did) -> per-problem BatchEvaluator, single process; with
    ``simulations`` a per-problem §V Monte Carlo on top, exactly as
    ``repro batch --simulate N`` computed it.  Returns the
    per-workspace (name, best, avg) fingerprints.
    """
    workspace.clear_compile_cache()
    fingerprints = []
    for path in paths:
        compiled = workspace.load_compiled(path)
        evaluator = BatchEvaluator(compiled)
        best = evaluator.evaluate().best
        if simulations:
            result = evaluator.simulate(
                method="intervals",
                n_simulations=simulations,
                seed=SEED,
                sample_utilities="missing",
            )
            len(result.ever_best())
            result.max_fluctuation(result.top_k_by_mean(5))
        fingerprints.append((compiled.name, best.name, round(best.average, 12)))
    return fingerprints


def report_fingerprints(report):
    return [
        (r.name, r.best_name, round(r.best_average, 12))
        for r in report.results
    ]


MC_SIMULATIONS = 256


def _best_sharded_time(paths, worker_counts, options, repeats: int = 3):
    """Fastest warm wall time per worker count: {workers: seconds}."""
    timings = {}
    for workers in worker_counts:
        runner = ShardedRunner(workers=workers, options=options)
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            runner.run(paths)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        timings[workers] = best
    return timings


def run(
    n_workspaces: int = N_WORKSPACES,
    workers: int | None = None,
    verbose: bool = True,
) -> dict:
    if workers is None:
        workers = max(2, min(os.cpu_count() or 2, 4))
    worker_counts = sorted({1, workers})
    with tempfile.TemporaryDirectory(prefix="sharded-registry-") as tmp:
        tmp = Path(tmp)
        t0 = time.perf_counter()
        paths = build_registry(tmp, n_workspaces)
        t_build = time.perf_counter() - t0

        # --- PR 1 sequential path, both workloads -------------------
        t0 = time.perf_counter()
        seq_fingerprints = sequential_reference(paths)
        t_seq_eval = time.perf_counter() - t0
        t0 = time.perf_counter()
        sequential_reference(paths, simulations=MC_SIMULATIONS)
        t_seq_mc = time.perf_counter() - t0

        # --- cold sharded run: compiles once, persists .npz ---------
        runner = ShardedRunner(workers=workers, options=BatchOptions())
        t0 = time.perf_counter()
        runner.run(paths)
        t_cold = time.perf_counter() - t0

        # --- warm sharded runs: mmap artifacts, stacked tensors -----
        eval_times = _best_sharded_time(paths, worker_counts, BatchOptions())
        mc_times = _best_sharded_time(
            paths,
            worker_counts,
            BatchOptions(simulations=MC_SIMULATIONS, seed=SEED),
        )

        # --- determinism: every worker count merges identically -----
        reports = {
            w: ShardedRunner(
                workers=w,
                options=BatchOptions(simulations=MC_SIMULATIONS, seed=SEED),
            ).run(paths)
            for w in sorted({1, 2, workers, workers * 2})
        }
        reference = reports[1]
        identical = all(
            r.results == reference.results and r.skipped == reference.skipped
            for r in reports.values()
        )
        matches_sequential = (
            report_fingerprints(reference) == seq_fingerprints
        )

    t_eval = min(eval_times.values())
    t_mc = min(mc_times.values())
    speedup_eval = t_seq_eval / t_eval
    speedup_mc = t_seq_mc / t_mc
    result = {
        "n_workspaces": n_workspaces,
        "worker_counts": worker_counts,
        "t_build_registry": t_build,
        "t_sequential_eval": t_seq_eval,
        "t_sequential_mc": t_seq_mc,
        "t_sharded_cold": t_cold,
        "t_sharded_eval_by_workers": {
            str(w): t for w, t in eval_times.items()
        },
        "t_sharded_mc_by_workers": {str(w): t for w, t in mc_times.items()},
        "mc_simulations": MC_SIMULATIONS,
        "speedup_eval": speedup_eval,
        "speedup_mc": speedup_mc,
        "speedup_cold": t_seq_eval / t_cold,
        "n_stacks": reference.n_stacks,
        "identical_across_worker_counts": identical,
        "matches_sequential_reference": matches_sequential,
        "min_speedup_floor": MIN_SPEEDUP,
    }
    if verbose:
        print(f"workspaces                    : {n_workspaces}")
        print(f"PR 1 sequential (eval)        : {t_seq_eval * 1e3:8.1f} ms")
        print(f"PR 1 sequential (+MC)         : {t_seq_mc * 1e3:8.1f} ms")
        print(f"sharded cold (compile+save)   : {t_cold * 1e3:8.1f} ms")
        for w in worker_counts:
            print(
                f"sharded warm w={w} (eval / MC) : "
                f"{eval_times[w] * 1e3:8.1f} ms / {mc_times[w] * 1e3:8.1f} ms"
            )
        print(f"speedup (eval)                : {speedup_eval:8.1f}x")
        print(f"speedup (+MC)                 : {speedup_mc:8.1f}x")
        print(f"identical across workers      : {identical}")
        print(f"matches sequential reference  : {matches_sequential}")

    assert identical, "merged reports differ across worker counts"
    assert matches_sequential, "sharded results diverge from PR 1 path"
    assert speedup_eval >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over the sequential eval path, "
        f"measured {speedup_eval:.1f}x"
    )
    assert speedup_mc >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over the sequential Monte Carlo "
        f"path, measured {speedup_mc:.1f}x"
    )
    return result


def test_sharded_batch_speedup_and_determinism():
    result = run(N_WORKSPACES, verbose=True)
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces, args.workers)
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
