"""Fig. 6 — the ranking of the 23 candidates with min/avg/max utilities.

Benchmarks the full additive evaluation (model build + min/avg/max +
sort) and asserts the published shape: exact rank order, near-tie at
the top, top-8 spread < 0.1, fully overlapped adjacent bands, maxima
above 1.
"""

from conftest import report

from repro.casestudy.names import RANKED_NAMES
from repro.casestudy.paper_results import FIG6_AVG_PAPER
from repro.core.model import AdditiveModel


def _evaluate(problem):
    return AdditiveModel(problem).evaluate()


def test_fig6_ranking(benchmark, problem):
    evaluation = benchmark(_evaluate, problem)
    assert evaluation.names_by_rank == RANKED_NAMES

    avgs = [row.average for row in evaluation]
    assert avgs[0] - avgs[2] < 0.02          # top-3 almost the same
    assert avgs[0] - avgs[7] < 0.1           # top-8 within 0.1
    assert evaluation.overlap_count() == 22  # all adjacent bands overlap
    assert evaluation.best.maximum > 1.0     # unnormalised upper weights

    lines = [f"{'rank':>4} {'candidate':22} {'paper avg':>9} {'measured':>9}"]
    for row in evaluation:
        paper = FIG6_AVG_PAPER.get(row.name)
        paper_text = f"{paper:.4f}" if paper is not None else "  n/a "
        lines.append(
            f"{row.rank:>4} {row.name:22} {paper_text:>9} {row.average:9.4f}"
        )
    lines.append(
        "shape: identical rank order; absolute values differ because the "
        "matrix is reconstructed (see EXPERIMENTS.md)"
    )
    report("Fig. 6 ranking by average overall utility", lines)
