"""Persistent registry index — warm runs served from the sqlite cache.

PR 2's sharded runtime made one pass over a registry fast, but every
``repro batch`` invocation still re-walked the registry, re-hashed
every workspace and re-evaluated problems whose inputs had not changed.
The persistent registry index (:mod:`repro.core.index`) caches results
across runs, keyed by ``(content_hash, eval_config_hash)``.

This benchmark builds the same ~200-workspace synthetic registry as
``bench_sharded_batch.py`` and asserts

* a warm second ``repro batch`` run over the unchanged registry is
  >= 5x faster than the cold first run,
* the warm run's CLI output is **byte-identical** to the cold run's,
  and identical to a ``--no-cache`` (never-cached) run, and
* after mutating exactly one workspace, only that workspace is
  re-evaluated (the other N-1 are served from the index).

It emits a ``BENCH_registry_index.json`` trajectory artifact (uploaded
by CI).  Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_registry_index.py

or under pytest (``pytest benchmarks/bench_registry_index.py -s``).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.genreg import neon_shortlist_registry as build_registry

from repro.cli import main as repro_main
from repro.core.index import RegistryIndex, default_index_path
from repro.core.runtime import BatchOptions, ShardedRunner

N_WORKSPACES = 200
MIN_SPEEDUP = 5.0
ARTIFACT = "BENCH_registry_index.json"
WARM_REPEATS = 3


def cli_batch(paths, *flags) -> str:
    """One ``repro batch --workers 1 ...`` invocation's stdout."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = repro_main(
            ["batch", "--workers", "1", *flags, *[str(p) for p in paths]]
        )
    assert code == 0, f"repro batch exited {code}"
    return buffer.getvalue()


def mutate_workspace(path: Path) -> None:
    """Semantically edit one workspace (its content hash changes)."""
    data = json.loads(path.read_text())
    data["name"] = data["name"] + "-edited"
    path.write_text(json.dumps(data, indent=2, sort_keys=True))


def run(n_workspaces: int = N_WORKSPACES, verbose: bool = True) -> dict:
    with tempfile.TemporaryDirectory(prefix="registry-index-") as tmp:
        tmp = Path(tmp)
        t0 = time.perf_counter()
        paths = build_registry(tmp, n_workspaces)
        t_build = time.perf_counter() - t0

        # --- cold run: parse + compile + evaluate + persist ----------
        t0 = time.perf_counter()
        cold_out = cli_batch(paths)
        t_cold = time.perf_counter() - t0

        # --- warm runs: stat + sqlite lookup, no evaluation ----------
        t_warm = None
        warm_out = None
        for _ in range(WARM_REPEATS):
            t0 = time.perf_counter()
            warm_out = cli_batch(paths)
            elapsed = time.perf_counter() - t0
            t_warm = elapsed if t_warm is None else min(t_warm, elapsed)

        byte_identical = warm_out == cold_out

        # --- a never-cached run must render the same bytes too -------
        nocache_out = cli_batch(paths, "--no-cache")
        matches_nocache = nocache_out == cold_out

        # --- cache accounting: full hit, then mutate exactly one -----
        db_path = default_index_path([str(p) for p in paths])
        with RegistryIndex(db_path) as index:
            runner = ShardedRunner(workers=1, options=BatchOptions())
            full = runner.run(paths, index=index)
            mutate_workspace(paths[0])
            partial = runner.run(paths, index=index)
        n_cached_full = full.n_cached
        n_cached_after_mutation = partial.n_cached
        unchanged_rows_stable = (
            full.results[1:] == partial.results[1:]
            and partial.results[0].name.endswith("-edited")
        )

    speedup = t_cold / t_warm
    result = {
        "n_workspaces": n_workspaces,
        "t_build_registry": t_build,
        "t_cold": t_cold,
        "t_warm_best": t_warm,
        "warm_repeats": WARM_REPEATS,
        "speedup_warm": speedup,
        "byte_identical_warm_output": byte_identical,
        "matches_no_cache_output": matches_nocache,
        "n_cached_full": n_cached_full,
        "n_cached_after_mutation": n_cached_after_mutation,
        "unchanged_rows_stable": unchanged_rows_stable,
        "min_speedup_floor": MIN_SPEEDUP,
    }
    if verbose:
        print(f"workspaces                  : {n_workspaces}")
        print(f"cold run (compile + eval)   : {t_cold * 1e3:8.1f} ms")
        print(f"warm run (index hits)       : {t_warm * 1e3:8.1f} ms")
        print(f"speedup (warm vs cold)      : {speedup:8.1f}x")
        print(f"byte-identical warm output  : {byte_identical}")
        print(f"matches --no-cache output   : {matches_nocache}")
        print(
            f"cached after one mutation   : "
            f"{n_cached_after_mutation}/{n_workspaces}"
        )

    assert byte_identical, "warm output differs from cold output"
    assert matches_nocache, "--no-cache output differs from cached output"
    assert n_cached_full == n_workspaces, (
        f"expected every workspace cached on the warm run, got "
        f"{n_cached_full}/{n_workspaces}"
    )
    assert n_cached_after_mutation == n_workspaces - 1, (
        f"expected exactly one re-evaluation after mutating one "
        f"workspace, got {n_workspaces - n_cached_after_mutation}"
    )
    assert unchanged_rows_stable, "unchanged workspaces changed results"
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x warm-over-cold, measured "
        f"{speedup:.1f}x"
    )
    return result


def test_registry_index_speedup_and_byte_identity():
    result = run(N_WORKSPACES, verbose=True)
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces)
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
