"""Delta compilation — absorb a one-cell edit without full recompute.

PR 5's registry index made unchanged registries nearly free, but any
edit — even a single performance cell — still re-parsed, re-compiled
and re-evaluated the whole touched workspace from scratch, and the
other N-1 workspaces still paid a full run's orchestration.  The delta
runtime (schema v3 sub-problem fingerprints in :mod:`repro.core.index`
plus :func:`repro.core.workspace.load_compiled_delta` /
:func:`repro.core.engine.delta_compile`) diffs the stored per-component
hashes against the edited file, patches only the changed rows of the
persisted compiled arrays and re-evaluates just that workspace
in-process.

This benchmark builds the same ~200-workspace synthetic registry as
``bench_sharded_batch.py``, warms the index, then repeatedly mutates
exactly one performance cell of one workspace and asserts

* the delta run is >= 10x faster than a full ``--no-cache`` recompute
  of the registry,
* the delta run's CLI output is **byte-identical** to the full
  recompute's over the same (mutated) registry, and its merged results
  are identical to a forced ``refresh`` re-evaluation, and
* exactly one workspace takes the delta path while the other N-1 are
  served from the index (``n_delta == 1``, ``n_cached == N-1``).

It emits a ``BENCH_delta.json`` trajectory artifact (uploaded by CI).
Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_delta.py

or under pytest (``pytest benchmarks/bench_delta.py -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_registry_index import cli_batch
from repro.core.genreg import neon_shortlist_registry as build_registry

from repro.core.index import (
    RECORDING_WINDOW_NS,
    RegistryIndex,
    default_index_path,
)
from repro.core.runtime import BatchOptions, ShardedRunner

N_WORKSPACES = 200
MIN_SPEEDUP = 10.0
ARTIFACT = "BENCH_delta.json"
DELTA_REPEATS = 3
FULL_REPEATS = 2


def mutate_one_cell(path: Path, repeat: int) -> None:
    """Change exactly one performance cell to a different valid value.

    The replacement value is borrowed from another alternative's cell
    for the same attribute (so it is guaranteed to sit on that
    attribute's scale); ``repeat`` rotates which attribute is edited so
    successive mutations touch different cells.
    """
    data = json.loads(path.read_text())
    alts = data["alternatives"]
    attrs = sorted(alts[0]["performances"])
    for offset in range(len(attrs)):
        attr = attrs[(repeat + offset) % len(attrs)]
        current = alts[0]["performances"][attr]
        for donor in alts[1:]:
            value = donor["performances"].get(attr)
            if value is not None and value != current:
                alts[0]["performances"][attr] = value
                path.write_text(json.dumps(data, indent=2, sort_keys=True))
                return
    raise AssertionError("registry degenerate: no mutable cell found")


def run(n_workspaces: int = N_WORKSPACES, verbose: bool = True) -> dict:
    with tempfile.TemporaryDirectory(prefix="delta-registry-") as tmp:
        tmp = Path(tmp)
        paths = build_registry(tmp, n_workspaces)

        # --- cold run: warms the index and the .npz artifacts --------
        cli_batch(paths)
        # Let the rows age out of the recording window (see
        # repro.core.index.RECORDING_WINDOW_NS), then re-stamp them
        # with one warm run: steady-state probes of unchanged files
        # now take the pure stat fast path, the regime a long-lived
        # registry lives in.
        time.sleep(RECORDING_WINDOW_NS / 1e9 + 0.1)
        cli_batch(paths)

        # --- baseline: full recompute of the whole registry ----------
        # --no-cache --no-disk-cache bypasses the whole caching stack:
        # every workspace re-parses, re-compiles and re-evaluates, the
        # cost an edit used to impose before delta compilation.
        t_full = None
        for _ in range(FULL_REPEATS):
            t0 = time.perf_counter()
            cli_batch(paths, "--no-cache", "--no-disk-cache")
            elapsed = time.perf_counter() - t0
            t_full = elapsed if t_full is None else min(t_full, elapsed)

        # --- delta runs: one-cell edit, then an indexed run ----------
        t_delta = None
        byte_identical = True
        for repeat in range(DELTA_REPEATS):
            mutate_one_cell(paths[0], repeat)
            t0 = time.perf_counter()
            delta_out = cli_batch(paths)
            elapsed = time.perf_counter() - t0
            t_delta = elapsed if t_delta is None else min(t_delta, elapsed)
            full_out = cli_batch(paths, "--no-cache")
            byte_identical = byte_identical and delta_out == full_out

        # --- accounting: the edit takes the delta path, N-1 cache ----
        db_path = default_index_path([str(p) for p in paths])
        with RegistryIndex(db_path) as index:
            runner = ShardedRunner(workers=1, options=BatchOptions())
            warm = runner.run(paths, index=index)
            mutate_one_cell(paths[0], DELTA_REPEATS)
            partial = runner.run(paths, index=index)
            refreshed = runner.run(paths, index=index, refresh=True)
        delta_slice_only = (
            warm.n_cached == n_workspaces
            and partial.n_delta == 1
            and partial.n_cached == n_workspaces - 1
            and not partial.skipped
        )
        matches_refresh = partial.results == refreshed.results

    speedup = t_full / t_delta
    result = {
        "n_workspaces": n_workspaces,
        "t_full_recompute_best": t_full,
        "t_delta_run_best": t_delta,
        "full_repeats": FULL_REPEATS,
        "delta_repeats": DELTA_REPEATS,
        "speedup_delta": speedup,
        "byte_identical_delta_output": bool(byte_identical and matches_refresh),
        "delta_slice_only": bool(delta_slice_only),
        "n_delta": partial.n_delta,
        "n_cached_after_mutation": partial.n_cached,
        "min_speedup_floor": MIN_SPEEDUP,
    }
    if verbose:
        print(f"workspaces                   : {n_workspaces}")
        print(f"full recompute (--no-cache)  : {t_full * 1e3:8.1f} ms")
        print(f"delta run (one-cell edit)    : {t_delta * 1e3:8.1f} ms")
        print(f"speedup (delta vs full)      : {speedup:8.1f}x")
        print(f"byte-identical delta output  : {byte_identical}")
        print(f"matches refresh results      : {matches_refresh}")
        print(
            f"delta slice accounting       : "
            f"{partial.n_delta} delta / {partial.n_cached} cached"
        )

    assert byte_identical, "delta output differs from full recompute output"
    assert matches_refresh, "delta results differ from refresh re-evaluation"
    assert delta_slice_only, (
        f"expected exactly one delta evaluation with {n_workspaces - 1} "
        f"cache hits, got {partial.n_delta} delta / {partial.n_cached} cached"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x delta-over-full, measured "
        f"{speedup:.1f}x"
    )
    return result


def test_delta_speedup_and_byte_identity():
    result = run(N_WORKSPACES, verbose=True)
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces)
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
