"""Fig. 2 — the 23 x 14 performance table, derived through the pipeline.

The paper's assessors filled the table by hand; the reproduction runs
the NeOn assess activity over the synthetic corpus and must land on the
shipped matrix cell-for-cell.  The benchmark measures the full
assess-everything pass (23 ontologies x 14 criteria + CQ coverage
against 100 questions).
"""

from conftest import report

from repro.casestudy.corpus import assessed_performance_table
from repro.casestudy.names import CANDIDATE_NAMES
from repro.casestudy.performances import FIG2_ANCHORS, performance_table
from repro.core.scales import MISSING


def test_fig2_assessment_pipeline(benchmark, registry):
    derived = benchmark(assessed_performance_table, registry)
    shipped = performance_table()
    matches = 0
    total = 0
    for name in CANDIDATE_NAMES:
        for attr in shipped.attribute_names:
            total += 1
            a = derived[name].performance(attr)
            b = shipped[name].performance(attr)
            if a is MISSING and b is MISSING:
                matches += 1
            elif a is not MISSING and b is not MISSING and abs(float(a) - float(b)) < 1e-9:
                matches += 1
    assert matches == total == 23 * 14
    anchor_cells = sum(len(v) for v in FIG2_ANCHORS.values())
    report(
        "Fig. 2 performance table",
        [
            f"paper: 23 candidates x 14 criteria ({anchor_cells} cells "
            "legible in the scan, adopted verbatim)",
            f"measured: pipeline-derived table matches the shipped matrix "
            f"on {matches}/{total} cells",
        ],
    )
