"""Observability — tracing is honest, complete and near-free.

PR 9's observability layer (:mod:`repro.obs`) instruments the sharded
runtime end to end: workspace load/compile, stacked and Monte Carlo
evaluation, index probe/commit, per-chunk worker spans shipped back
across the process boundary and stitched under the parent trace.  The
layer must hold three properties at once:

* **Tracing changes nothing.**  A traced registry run must produce
  results byte-identical to an untraced run — spans are pure
  observation.
* **The trace is complete.**  The exported Chrome trace-event file
  must be valid JSON carrying at least :data:`MIN_STAGE_NAMES`
  distinct stage names, including spans recorded *inside worker
  processes* (their pids differ from the parent's).
* **Tracing is near-free.**  A fully traced run may cost at most
  :data:`MAX_OVERHEAD_PCT` percent wall time over the untraced run
  (the no-tracer default costs one ``is None`` check per site).

The benchmark builds a ~120-workspace synthetic registry, times
untraced vs traced warm sharded runs (best-of passes, retried
measurement sessions — noise only ever slows a run), validates the
exported trace, and emits a ``BENCH_obs.json`` trajectory artifact
(uploaded by CI).  Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_obs.py

or under pytest (``pytest benchmarks/bench_obs.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:  # allow standalone execution without a PYTHONPATH export
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_sharded_batch import report_fingerprints

from repro.core.genreg import neon_shortlist_registry as build_registry
from repro.core.runtime import BatchOptions, ShardedRunner
from repro.obs import trace as obs_trace

N_WORKSPACES = 120
SIMULATIONS = 200
#: Maximum wall-time cost of tracing over the untraced run (percent).
MAX_OVERHEAD_PCT = 5.0
#: The committed trajectory target (``benchmarks/floors.json``):
#: ``t_untraced / t_traced`` — 0.95 is the 5 % overhead bound.
TARGET_TRACED_SPEEDUP = 0.95
#: Distinct span names the exported trace must carry (workspace load,
#: stacked + Monte Carlo eval, chunk, fan-out round, run root).
MIN_STAGE_NAMES = 6
ARTIFACT = "BENCH_obs.json"


def _timed_run(paths, workers: int, options: BatchOptions) -> float:
    """Wall seconds for one warm sharded registry run."""
    runner = ShardedRunner(workers=workers, options=options)
    t0 = time.perf_counter()
    runner.run(paths)
    return time.perf_counter() - t0


def _timed_traced_run(paths, workers: int, options: BatchOptions):
    """Wall seconds + (tracer, report) for one traced warm run."""
    runner = ShardedRunner(workers=workers, options=options)
    tracer = obs_trace.Tracer()
    t0 = time.perf_counter()
    with obs_trace.tracing(tracer):
        report = runner.run(paths)
    return time.perf_counter() - t0, tracer, report


def _validate_trace(tracer, tmp: Path) -> dict:
    """Round-trip the trace through the Chrome export and inspect it."""
    trace_path = obs_trace.write_chrome_trace(
        tracer.spans(), tmp / "trace.json"
    )
    try:
        events = obs_trace.read_chrome_trace(trace_path)
        valid = all(
            event.get("ph") == "X"
            and isinstance(event.get("name"), str)
            and isinstance(event.get("ts"), (int, float))
            and isinstance(event.get("dur"), (int, float))
            for event in events
        )
    except (ValueError, json.JSONDecodeError):
        events, valid = [], False
    names = {str(event["name"]) for event in events} if valid else set()
    pids = {event["pid"] for event in events} if valid else set()
    return {
        "n_spans": len(events),
        "n_stage_names": len(names),
        "stage_names": sorted(names),
        "trace_valid_chrome_json": bool(valid and events),
        # worker chunks record in forked processes: >1 distinct pid
        "has_worker_spans": len(pids) > 1,
    }


def run(n_workspaces: int = N_WORKSPACES, verbose: bool = True) -> dict:
    """The gate: byte-exact traced output, complete trace, <=5% cost."""
    workers = max(2, min(os.cpu_count() or 2, 4))
    options = BatchOptions(simulations=SIMULATIONS, seed=2012)
    with tempfile.TemporaryDirectory(prefix="obs-registry-") as tmp:
        tmp = Path(tmp)
        paths = build_registry(tmp, n_workspaces)

        runner = ShardedRunner(workers=workers, options=options)
        plain = runner.run(paths)  # cold run: compiles + persists .npz

        # Best-of passes inside retried sessions: a load spike inflates
        # either side independently but never deflates the true ratio,
        # so the best observed speedup is the honest one.
        speedup_traced = 0.0
        tracer = report = None
        for _ in range(3):
            t_plain = min(
                _timed_run(paths, workers, options) for _ in range(2)
            )
            t_traced = None
            for _ in range(2):
                elapsed, candidate, candidate_report = _timed_traced_run(
                    paths, workers, options
                )
                if t_traced is None or elapsed < t_traced:
                    t_traced = elapsed
                tracer, report = candidate, candidate_report
            speedup_traced = max(speedup_traced, t_plain / t_traced)
            if speedup_traced >= TARGET_TRACED_SPEEDUP:
                break
        overhead_pct = (1.0 / speedup_traced - 1.0) * 100.0

        identical = (
            report_fingerprints(report) == report_fingerprints(plain)
            and report.results == plain.results
        )
        trace_info = _validate_trace(tracer, tmp)

    result = {
        "n_workspaces": n_workspaces,
        "workers": workers,
        "simulations": SIMULATIONS,
        "t_untraced_best": t_plain,
        "t_traced_best": t_traced,
        "speedup_traced": speedup_traced,
        "overhead_pct": overhead_pct,
        "byte_identical_under_tracing": bool(identical),
        "stage_names_cover_pipeline": (
            trace_info["n_stage_names"] >= MIN_STAGE_NAMES
        ),
        "min_traced_speedup_floor": TARGET_TRACED_SPEEDUP,
        **trace_info,
    }
    if verbose:
        print(f"workspaces                    : {n_workspaces}")
        print(f"untraced warm run             : {t_plain * 1e3:8.1f} ms")
        print(f"traced warm run               : {t_traced * 1e3:8.1f} ms")
        print(f"tracing overhead              : {overhead_pct:8.1f} %")
        print(f"spans exported                : {trace_info['n_spans']}")
        print(f"distinct stage names          : {trace_info['n_stage_names']}")
        print(f"stages: {', '.join(trace_info['stage_names'])}")
        print(f"worker-side spans present     : {trace_info['has_worker_spans']}")
        print(f"byte-identical under tracing  : {identical}")

    assert identical, "traced run results differ from the untraced run"
    assert trace_info["trace_valid_chrome_json"], (
        "exported Chrome trace is not a valid trace-event document"
    )
    assert trace_info["has_worker_spans"], (
        "no worker-process spans were stitched into the parent trace"
    )
    assert trace_info["n_stage_names"] >= MIN_STAGE_NAMES, (
        f"trace covers only {trace_info['n_stage_names']} stage name(s) "
        f"({', '.join(trace_info['stage_names'])}); "
        f"expected >= {MIN_STAGE_NAMES}"
    )
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"tracing overhead {overhead_pct:.1f}% exceeds the "
        f"{MAX_OVERHEAD_PCT:.0f}% bound"
    )
    return result


def test_tracing_overhead_and_completeness():
    """Pytest entry point: run the gate and write the CI artifact."""
    result = run(N_WORKSPACES, verbose=True)
    Path(ARTIFACT).write_text(json.dumps(result, indent=2))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspaces", type=int, default=N_WORKSPACES)
    parser.add_argument("--artifact", default=ARTIFACT)
    args = parser.parse_args()
    outcome = run(args.workspaces)
    Path(args.artifact).write_text(json.dumps(outcome, indent=2))
    print(f"wrote {args.artifact}")
