"""Fig. 5 — the 14 attribute weight intervals from trade-off elicitation.

The paper prints low/avg/upp for every attribute; the reconstruction
multiplies branch intervals by precise leaf shares down the hierarchy
paths.  The benchmark measures the full elicitation -> attribute-weight
computation; assertions pin every average exactly and every bound to
print precision.
"""

import pytest
from conftest import report

from repro.casestudy.paper_results import FIG5_PAPER
from repro.casestudy.preferences import paper_weight_system


def _build_and_extract():
    ws = paper_weight_system()
    return ws.attribute_averages(), ws.attribute_weights()


def test_fig5_weight_intervals(benchmark):
    averages, intervals = benchmark(_build_and_extract)
    lines = [f"{'attribute':26} {'paper (l/a/u)':>22}   {'measured (l/a/u)':>24}"]
    for attr, (low, avg, upp) in FIG5_PAPER.items():
        iv = intervals[attr]
        assert averages[attr] == pytest.approx(avg, abs=1e-9)
        assert iv.lower == pytest.approx(low, abs=1.5e-3)
        assert iv.upper == pytest.approx(upp, abs=1.5e-3)
        lines.append(
            f"{attr:26} {low:.3f}/{avg:.3f}/{upp:.3f}"
            f"{'':>6}{iv.lower:.4f}/{averages[attr]:.4f}/{iv.upper:.4f}"
        )
    assert sum(averages.values()) == pytest.approx(1.0, abs=1e-12)
    lines.append(
        f"sum of averages: 1.000 (paper) vs {sum(averages.values()):.6f}"
    )
    lines.append(
        f"sum of lowers {sum(iv.lower for iv in intervals.values()):.3f} "
        f"(paper ~0.806); sum of uppers "
        f"{sum(iv.upper for iv in intervals.values()):.3f} (paper ~1.193)"
    )
    report("Fig. 5 attribute weights", lines)
