"""Ablation B — treatments of missing performances.

The paper's methodological point (§III, ref. [18]): an unknown
performance should carry the whole [0, 1] utility interval, not the
worst level ([15]'s treatment) and not a silent average.  The ablation
compares the three treatments on the case study and shows where they
disagree — exactly on the candidates with unknown cells.
"""

from conftest import report

from repro.baselines.worst_case import worst_case_ranking
from repro.core.interval import Interval
from repro.core.model import evaluate
from repro.core.problem import DecisionProblem
from repro.core.ranking import kendall_tau
from repro.core.utility import DiscreteUtility, PiecewiseLinearUtility


def _with_missing_utility(problem, interval):
    """The same problem with every missing-value utility replaced."""
    utilities = {}
    for attr, fn in problem.utilities.items():
        if isinstance(fn, DiscreteUtility):
            utilities[attr] = DiscreteUtility(fn.scale, fn.by_level, interval)
        else:
            utilities[attr] = PiecewiseLinearUtility(fn.scale, fn.knots, interval)
    return DecisionProblem(
        problem.hierarchy, problem.table, utilities, problem.weights,
        name=f"{problem.name}:missing-ablation",
    )


def test_missing_value_treatments(benchmark, problem):
    paper = benchmark(evaluate, problem)

    worst = worst_case_ranking(problem)
    pessimistic = evaluate(_with_missing_utility(problem, Interval(0.0, 0.0)))
    optimistic = evaluate(_with_missing_utility(problem, Interval(1.0, 1.0)))

    tau_worst = kendall_tau(paper.names_by_rank, worst.names_by_rank)
    tau_pess = kendall_tau(paper.names_by_rank, pessimistic.names_by_rank)
    tau_opt = kendall_tau(paper.names_by_rank, optimistic.names_by_rank)

    missing_rows = {name for name, _ in problem.table.missing_cells()}
    moved_by_worst = {
        name
        for name in paper.names_by_rank
        if worst.rank_of(name) != paper.rank_of(name)
    }
    # every rank change under the worst-case treatment traces back to a
    # candidate with unknown cells (or its immediate neighbours)
    assert moved_by_worst, "treatments must disagree somewhere"
    assert tau_worst > 0.85
    assert tau_opt <= 1.0 and tau_pess <= 1.0

    report(
        "Ablation B: missing-performance treatments",
        [
            "paper treatment: utility interval [0, 1] per ref. [18]",
            f"tau vs worst-level treatment ([15]): {tau_worst:.3f}",
            f"tau vs pessimistic (u = 0):          {tau_pess:.3f}",
            f"tau vs optimistic (u = 1):           {tau_opt:.3f}",
            f"candidates with unknown cells: {len(missing_rows)}; "
            f"rank changes under [15]: {len(moved_by_worst)}",
        ],
    )
